//! The AVMON node state machine.
//!
//! [`Node`] is **sans-io**: it never touches sockets, clocks or threads.
//! A driver (the discrete-event simulator, the threaded runtime, or the UDP
//! runtime) feeds it three kinds of inputs — [`Node::start`],
//! [`Node::handle_message`], [`Node::handle_timer`] — each stamped with the
//! current time. Inputs push their effects into small internal queues that
//! the driver then drains through the **poll interface**:
//!
//! * [`Node::poll_transmit`] — outgoing datagrams ([`Transmit`]),
//! * [`Node::poll_timer`] — timers to arm ([`Timer`] at an absolute time),
//! * [`Node::poll_event`] — application-visible [`AppEvent`]s.
//!
//! The queues are reused across inputs, so the steady-state hot path
//! performs no allocation per input — the property the paper's §4
//! scalability analysis (`O(cvs)` memory, `O(cvs²)` hash checks per
//! period) depends on. The [`crate::driver`] module builds the shared
//! harness (timer queue, drain loop, snapshots) on top of this interface.
//!
//! One `Node` value implements every sub-protocol of the paper: the JOIN
//! spanning tree (Fig. 1), coarse-view maintenance and monitor discovery
//! (Fig. 2), availability monitoring with forgetful pinging (§3.3), monitor
//! reporting (§3.3), the PR2 optimization (§5.4), and the Broadcast baseline
//! (Table 1).

mod maintenance;
mod monitoring;
#[cfg(test)]
mod tests;

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::table::{FlatMap, FlatSet};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use avmon_hash::{PointMemo, Threshold};

use crate::behavior::Behavior;
use crate::codec;
use crate::config::{Config, DiscoveryMode};
use crate::history::HistoryStore;
use crate::message::{Message, Nonce};
use crate::selector::{ReportVerification, SharedSelector};
use crate::stats::NodeStats;
use crate::time::{DurMs, TimeMs};
use crate::view::CoarseView;
use crate::NodeId;

/// Why a node is entering the system (Fig. 1 distinguishes the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// First ever join (birth): JOIN weight is `cvs`.
    Fresh,
    /// Re-entry after an absence: JOIN weight is
    /// `min(cvs, down_duration / protocol_period)`.
    Rejoin {
        /// How long the node was out of the system.
        down_duration: DurMs,
    },
}

/// Timers a node asks its driver to arm.
///
/// `Ord` follows `(variant, nonce)` so driver timer queues can order
/// same-deadline timers deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Timer {
    /// The coarse-membership protocol period tick (Fig. 2).
    Protocol,
    /// The monitoring-ping period tick (§3.3).
    Monitoring,
    /// Expiry of an outstanding request (ping / fetch / RPC).
    ///
    /// # Expiry contract (lazy / cancellable timers)
    ///
    /// Every `Expire` is armed together with a per-nonce deadline stamp on
    /// the node's pending-request table. A firing is *live* only while the
    /// request is still outstanding **and** the firing time has reached the
    /// stamped deadline; [`Node::handle_timer`] discards anything else in
    /// `O(1)` — a pong that already retired the request (the common case:
    /// almost every ping is answered), or a stale firing from an earlier
    /// arming of a reused nonce (so re-armed nonces never resurrect old
    /// timers). Drivers are therefore free to *drop* dead `Expire` timers
    /// without delivering them: [`Node::timer_live`] answers the same
    /// question without a `&mut` borrow, which is what lets the simulator's
    /// calendar and [`crate::driver::TimerQueue::pop_due_where`] skip
    /// ponged pings before they ever touch the node. Delivering a dead
    /// firing anyway is also fine — it is a no-op.
    Expire(Nonce),
}

/// Where an outgoing message is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Destination {
    /// A single peer.
    Node(NodeId),
    /// Every node in the system (Broadcast baseline only; never produced
    /// in [`DiscoveryMode::CoarseView`]).
    AllNodes,
}

/// One outgoing datagram, drained via [`Node::poll_transmit`].
#[derive(Debug, Clone, PartialEq)]
pub struct Transmit {
    /// Destination.
    pub to: Destination,
    /// The message to deliver.
    pub msg: Message,
}

impl Transmit {
    /// The unicast destination, if this is not a broadcast.
    #[must_use]
    pub fn unicast_to(&self) -> Option<NodeId> {
        match self.to {
            Destination::Node(id) => Some(id),
            Destination::AllNodes => None,
        }
    }
}

/// A node effect, as a single enum.
///
/// The poll interface ([`Node::poll_transmit`] / [`Node::poll_timer`] /
/// [`Node::poll_event`]) is the hot path; `Action` remains as the unified
/// vocabulary for tests, logs and tools that want one stream of effects.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Action {
    /// Transmit `msg` to `to`.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: Message,
    },
    /// Deliver `msg` to every node in the system (Broadcast baseline only).
    Broadcast {
        /// The message.
        msg: Message,
    },
    /// Invoke [`Node::handle_timer`] with `timer` at time `at`.
    SetTimer {
        /// Which timer.
        timer: Timer,
        /// Absolute protocol time at which to fire.
        at: TimeMs,
    },
    /// An application-visible event (discoveries, report outcomes, …).
    App(AppEvent),
}

/// Application-visible protocol events.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AppEvent {
    /// This node learned of a (verified) member of its own pinging set.
    MonitorDiscovered {
        /// The monitor that will track this node's availability.
        monitor: NodeId,
    },
    /// This node was assigned a (verified) target to monitor.
    TargetDiscovered {
        /// The node this node must now monitor.
        target: NodeId,
    },
    /// The initial coarse view was inherited from the join contact.
    ViewInherited {
        /// The contact that supplied the view.
        from: NodeId,
        /// Entries adopted.
        adopted: usize,
    },
    /// A JOIN for `origin` was absorbed into this node's coarse view.
    JoinAbsorbed {
        /// The joining node now present in the view.
        origin: NodeId,
    },
    /// A monitor report for `target` arrived and was verified.
    ReportOutcome {
        /// The node whose monitors were requested.
        target: NodeId,
        /// Verification result (verified / rejected claims).
        verification: ReportVerification,
    },
    /// An availability answer arrived from one of `target`'s monitors.
    HistoryOutcome {
        /// The monitor that answered.
        monitor: NodeId,
        /// The monitored node the answer is about.
        target: NodeId,
        /// Reported availability, if the monitor had data.
        availability: Option<f64>,
        /// Number of monitoring pings backing the answer.
        samples: u64,
    },
    /// An outstanding report/history request timed out.
    RequestTimedOut {
        /// The peer that failed to answer.
        peer: NodeId,
    },
    /// A monitored target began an unresponsive streak (local failure-
    /// detector suspicion — the raw signal behind detection-time and
    /// mistake-rate QoS scoring).
    TargetUnresponsive {
        /// The target that stopped answering monitoring pings.
        target: NodeId,
    },
    /// A previously-unresponsive target answered again (suspicion
    /// retracted; closes a failure-detector mistake episode if the target
    /// never actually died).
    TargetResponsive {
        /// The target that resumed answering.
        target: NodeId,
    },
    /// An opaque application payload arrived over the overlay
    /// ([`Message::AppData`], sent by a peer's [`Node::send_app`]).
    AppData {
        /// The sending node.
        from: NodeId,
        /// Application-defined bytes, delivered uninspected.
        payload: Vec<u8>,
    },
}

/// Outstanding request state, keyed by nonce. `Copy`: every variant is
/// a couple of 6-byte identities, so entries live inline in the flat
/// pending table with no heap indirection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    ViewPing { peer: NodeId },
    ViewFetch { peer: NodeId },
    InitView { peer: NodeId },
    MonitorPing { peer: NodeId },
    Report { target: NodeId },
    History { monitor: NodeId, target: NodeId },
}

/// An outstanding request plus the absolute deadline its [`Timer::Expire`]
/// was armed for — the stamp behind the lazy-expiry contract (see
/// [`Timer::Expire`]): a firing earlier than `deadline` is a stale timer
/// from a previous arming of a reused nonce and is discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingEntry {
    state: Pending,
    deadline: TimeMs,
}

/// Per-target monitoring state kept by a monitor (an entry of `TS(x)`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetRecord {
    /// When the monitoring relationship was discovered.
    pub discovered_at: TimeMs,
    /// Monitoring pings sent to the target.
    pub pings_sent: u64,
    /// Monitoring pongs received from the target.
    pub pongs_received: u64,
    /// Time of the most recent pong.
    pub last_pong: Option<TimeMs>,
    /// Start of the currently-observed up session, if the target is up.
    pub session_start: Option<TimeMs>,
    /// Duration of the last completed observed up session (`ts(u)` in the
    /// forgetful-pinging formula).
    pub last_session: DurMs,
    /// Start of the current unresponsive streak, if any.
    pub unresponsive_since: Option<TimeMs>,
    /// The availability history (sub-problem II storage).
    pub history: HistoryStore,
}

impl TargetRecord {
    fn new(now: TimeMs, history: HistoryStore) -> Self {
        TargetRecord {
            discovered_at: now,
            pings_sent: 0,
            pongs_received: 0,
            last_pong: None,
            session_start: None,
            last_session: 0,
            unresponsive_since: None,
            history,
        }
    }

    /// The paper's §5.4 estimator: the fraction of monitoring pings that
    /// received a response. `None` before the first ping.
    #[must_use]
    pub fn availability_estimate(&self) -> Option<f64> {
        (self.pings_sent > 0).then(|| self.pongs_received as f64 / self.pings_sent as f64)
    }
}

/// A node's durable state: what §3 requires to survive failures and rejoins
/// ("persistent storage that can be retrieved after a failure or a rejoin").
///
/// Thanks to consistency, `PS` and `TS` membership never has to change on
/// churn — only this snapshot needs to be saved and restored; no history
/// transfer between nodes is ever required.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PersistentState {
    /// The pinging set (nodes known to monitor this node).
    pub ps: Vec<NodeId>,
    /// The target set with per-target monitoring state.
    pub targets: Vec<(NodeId, TargetRecord)>,
}

/// The AVMON protocol state machine for one node.
///
/// # Example
///
/// Inputs queue effects; the driver drains them with the poll methods:
///
/// ```
/// use avmon::{Config, Destination, HashSelector, JoinKind, Node, NodeId};
/// use std::sync::Arc;
///
/// let config = Config::builder(100).build()?;
/// let selector = Arc::new(HashSelector::from_config(&config));
/// let mut node = Node::new(NodeId::from_index(1), config, selector, 42);
///
/// node.start(0, JoinKind::Fresh, Some(NodeId::from_index(2)));
///
/// // JOIN + init-view request head for the contact …
/// while let Some(transmit) = node.poll_transmit() {
///     assert_eq!(transmit.to, Destination::Node(NodeId::from_index(2)));
/// }
/// // … and the periodic timers ask to be armed.
/// assert!(node.poll_timer().is_some());
/// # Ok::<(), avmon::Error>(())
/// ```
#[derive(Debug)]
pub struct Node {
    id: NodeId,
    config: Config,
    selector: SharedSelector,
    behavior: Behavior,
    rng: SmallRng,
    view: CoarseView,
    ps: BTreeSet<NodeId>,
    targets: BTreeMap<NodeId, TargetRecord>,
    pending: FlatMap<Nonce, PendingEntry>,
    /// Pair-point memo serving repeat consistency-condition checks in O(1)
    /// when the selector is a pure pair hash (`memo_threshold` is `Some`).
    /// Purely an evaluation cache: it changes no protocol decision and
    /// draws no randomness — `process_fetched_view` re-scans mostly the
    /// same pairs every period (Fig. 2), and with an expensive hasher
    /// (the paper's MD5) the re-hashing dominates the whole period cost.
    memo: PointMemo,
    /// The cached acceptance threshold; `None` disables memoization and
    /// routes every check through `MonitorSelector::is_monitor` (always the
    /// case for membership-dependent selectors, whose answers may change).
    memo_threshold: Option<Threshold>,
    /// Pairs this node has already NOTIFY-ed, so that rediscovering the
    /// same match every period (Fig. 2 re-scans all pairs) does not
    /// retransmit. Bounded: cleared wholesale when it reaches capacity, so
    /// notifications are eventually retransmitted and Theorem 1 (eventual
    /// discovery) is preserved even if an endpoint was down the first time.
    notified: FlatSet<(NodeId, NodeId)>,
    notified_cap: usize,
    /// When the notified cache was last aged out wholesale. Clearing on a
    /// time cadence (not only at capacity) bounds NOTIFY suppression in
    /// *time*: if the first NOTIFY to an endpoint was lost — possible under
    /// message loss or partitions, which the paper's reliable network
    /// excludes — the pair is re-notified within a bounded number of
    /// periods, preserving eventual discovery (Theorem 1) under faults.
    notified_cleared_at: TimeMs,
    /// The join contact, kept for re-joining when the coarse view empties
    /// out (possible under message loss, which the paper's reliable-network
    /// model excludes but real deployments do not).
    contact: Option<NodeId>,
    history_template: HistoryStore,
    started_at: TimeMs,
    last_monitor_ping_rx: Option<TimeMs>,
    /// Last time a coarse-view probe (ViewPing / ViewFetch) arrived —
    /// direct evidence that somebody still holds this node in a view. On
    /// a reliable network a view member receives ~2 probes per period, so
    /// silence over several periods means loss-driven evictions have made
    /// the node *invisible*: alive, but in nobody's coarse view, a state
    /// from which the paper's protocol (reliable network, §3) can never
    /// recover because only view members are ever fetched from. The
    /// visibility-recovery branch of the protocol period re-advertises in
    /// that case (documented deviation, like the empty-view rejoin).
    last_view_probe_rx: Option<TimeMs>,
    pr2_last_fired: Option<TimeMs>,
    /// Monotone membership version of `PS` ∪ `TS`: bumped whenever either
    /// set's membership changes (never for per-target counter updates).
    /// Together with [`CoarseView::version`] this gives observers a cheap
    /// "anything to re-verify?" signal — the basis of the simulator's
    /// incremental invariant checking.
    sets_epoch: u64,
    stats: NodeStats,
    /// Output queues drained by the poll interface. Reused across inputs:
    /// `pop_front` never shrinks capacity, so the steady state allocates
    /// nothing per input.
    outbox: VecDeque<Transmit>,
    timerbox: VecDeque<(Timer, TimeMs)>,
    eventbox: VecDeque<AppEvent>,
}

/// The effective pair-point memo policy in force for a run: how many
/// slots each node's memo gets, whether memoization actually engages,
/// and a human-readable reason — computed by [`Node::memo_policy`] and
/// surfaced by drivers (the simulator embeds it in its invariant
/// summary) so a disabled memo is a reported fact, not a silent
/// performance cliff.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MemoPolicy {
    /// Slots per node's memo (0 = disabled).
    pub slots: usize,
    /// Whether memoization engages (slots > 0 *and* the selector is a
    /// pure pair hash).
    pub enabled: bool,
    /// Why this policy is in force.
    pub reason: String,
}

impl Node {
    /// Creates a node with the given identity, configuration, selection
    /// scheme, and RNG seed (all protocol randomness derives from `seed`).
    #[must_use]
    pub fn new(id: NodeId, config: Config, selector: SharedSelector, seed: u64) -> Self {
        let cvs = config.cvs;
        let memo_slots = Node::default_memo_slots(&config);
        let memo_threshold = if memo_slots > 0 {
            selector.selection_threshold()
        } else {
            None
        };
        Node {
            id,
            config,
            selector,
            behavior: Behavior::Honest,
            rng: SmallRng::seed_from_u64(seed),
            view: CoarseView::new(id, cvs),
            ps: BTreeSet::new(),
            targets: BTreeMap::new(),
            pending: FlatMap::new(),
            memo: PointMemo::new(memo_slots),
            memo_threshold,
            notified: FlatSet::new(),
            notified_cap: (8 * cvs * cvs).max(1024),
            notified_cleared_at: 0,
            contact: None,
            history_template: HistoryStore::default(),
            started_at: 0,
            last_monitor_ping_rx: None,
            last_view_probe_rx: None,
            pr2_last_fired: None,
            sets_epoch: 0,
            stats: NodeStats::default(),
            outbox: VecDeque::new(),
            timerbox: VecDeque::new(),
            eventbox: VecDeque::new(),
        }
    }

    /// Default pair-point memo size: enough slots for the Fig. 2 view
    /// cross-check working set (`2·(cvs+2)²` ordered pairs) at small and
    /// medium deployments, and **zero** above 8 192 nodes — per-node pair
    /// caches cannot scale memory-wise to very large simulated populations,
    /// and there the cheap default hasher makes them a wash anyway. Large
    /// deployments that pay for an expensive hasher (the paper's MD5)
    /// should opt back in via [`Node::set_point_memo_slots`].
    fn default_memo_slots(config: &Config) -> usize {
        Node::memo_policy(config, None, true).slots
    }

    /// The effective pair-point memo policy for a deployment — the one
    /// place the sizing rule lives, so drivers can *report* it instead of
    /// leaving large-N `hash_checks` cliffs unexplained (the default
    /// silently disables the memo above 8 192 nodes). `override_slots` is
    /// a driver-level override (the simulator's `node_memo` option);
    /// `memoizable` is whether the selector is a pure pair hash
    /// ([`crate::MonitorSelector::selection_threshold`] is `Some`) —
    /// membership-dependent selectors can never engage the memo no matter
    /// how many slots it has.
    #[must_use]
    pub fn memo_policy(
        config: &Config,
        override_slots: Option<usize>,
        memoizable: bool,
    ) -> MemoPolicy {
        let (slots, reason) = match override_slots {
            Some(0) => (0, "explicitly disabled (node_memo = 0)".to_string()),
            Some(slots) => (slots, format!("explicit override (node_memo = {slots})")),
            None if config.system_size > 8192 => (
                0,
                format!(
                    "default policy disables the memo above 8192 nodes \
                     (system_size = {}); opt in via node_memo / set_point_memo_slots",
                    config.system_size
                ),
            ),
            None => (
                (2 * (config.cvs + 2) * (config.cvs + 2)).clamp(1024, 16384),
                format!(
                    "default working-set sizing 2*(cvs+2)^2 for cvs = {}, \
                     clamped to [1024, 16384]",
                    config.cvs
                ),
            ),
        };
        if !memoizable && slots > 0 {
            return MemoPolicy {
                slots,
                enabled: false,
                reason: "selector is not a pure pair hash; every check calls is_monitor directly"
                    .to_string(),
            };
        }
        MemoPolicy {
            slots,
            enabled: slots > 0,
            reason,
        }
    }

    /// Resizes (or, with `0`, disables) the consistency-condition pair
    /// memo, dropping everything cached. Memoization only ever engages for
    /// pure-hash selectors ([`MonitorSelector::selection_threshold`] is
    /// `Some`); it is an evaluation cache with no observable effect on
    /// protocol decisions, emitted messages, timers, or RNG draws — the
    /// differential harness in `tests/equivalence.rs` holds same-seed runs
    /// byte-identical with the memo on and off.
    pub fn set_point_memo_slots(&mut self, slots: usize) {
        self.memo = PointMemo::new(slots);
        self.memo_threshold = if slots > 0 {
            self.selector.selection_threshold()
        } else {
            None
        };
    }

    /// `(hits, misses)` of the consistency-condition pair memo (both zero
    /// when memoization is disabled or the selector is not a pure hash).
    #[must_use]
    pub fn point_memo_stats(&self) -> (u64, u64) {
        (self.memo.hits(), self.memo.misses())
    }

    /// Sets the node's behavior (attack model); defaults to honest.
    pub fn set_behavior(&mut self, behavior: Behavior) {
        self.behavior = behavior;
    }

    /// The behavior in effect.
    #[must_use]
    pub fn behavior(&self) -> &Behavior {
        &self.behavior
    }

    /// Sets the history-store prototype cloned for each newly discovered
    /// target (defaults to [`HistoryStore::raw`]).
    pub fn set_history_template(&mut self, template: HistoryStore) {
        self.history_template = template;
    }

    /// This node's identity.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The coarse view.
    #[must_use]
    pub fn view(&self) -> &CoarseView {
        &self.view
    }

    /// The pinging set `PS(x)`: nodes known to monitor this node.
    pub fn pinging_set(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ps.iter().copied()
    }

    /// Number of known monitors, `|PS(x)|`.
    #[must_use]
    pub fn pinging_set_len(&self) -> usize {
        self.ps.len()
    }

    /// The target set `TS(x)`: nodes this node monitors.
    pub fn target_set(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.targets.keys().copied()
    }

    /// Number of monitored targets, `|TS(x)|`.
    #[must_use]
    pub fn target_set_len(&self) -> usize {
        self.targets.len()
    }

    /// Monitoring state for `target`, if this node monitors it.
    #[must_use]
    pub fn target_record(&self, target: NodeId) -> Option<&TargetRecord> {
        self.targets.get(&target)
    }

    /// Iterates over every monitored target with its monitoring state, in
    /// identity order. Lets observers aggregate estimates in one pass
    /// instead of probing [`Node::target_record`] per candidate.
    pub fn target_records(&self) -> impl Iterator<Item = (NodeId, &TargetRecord)> {
        self.targets.iter().map(|(&id, rec)| (id, rec))
    }

    /// The `PS`/`TS` membership version (see the field docs): equal values
    /// guarantee both sets are membership-identical.
    #[must_use]
    pub fn sets_epoch(&self) -> u64 {
        self.sets_epoch
    }

    /// A combined change epoch over everything invariant checkers and
    /// snapshot consumers observe: `PS`/`TS` membership plus coarse-view
    /// membership. Both components are monotone, so the sum is equal
    /// between two observations iff nothing changed in between.
    #[must_use]
    pub fn change_epoch(&self) -> u64 {
        self.sets_epoch + self.view.version()
    }

    /// The §5.4 availability estimate for `target` (fraction of monitoring
    /// pings answered), if monitored here.
    #[must_use]
    pub fn availability_estimate(&self, target: NodeId) -> Option<f64> {
        self.targets
            .get(&target)
            .and_then(TargetRecord::availability_estimate)
    }

    /// Total memory entries `|CV| + |PS| + |TS|` (the metric of Figs. 9-10).
    #[must_use]
    pub fn memory_entries(&self) -> usize {
        self.view.len() + self.ps.len() + self.targets.len()
    }

    /// Protocol counters.
    #[must_use]
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// 64-bit words this incarnation's protocol RNG has drawn — the node's
    /// contribution to the `node` stream of the RNG-stream ledger (see the
    /// simulator's `InvariantSummary::rng_ledger`). All of a node's
    /// randomness (periodic phases, view eviction, nonces, forwarding
    /// coins) comes from the one stream seeded at construction, so this is
    /// the node's exact position in it.
    #[must_use]
    pub fn rng_draws(&self) -> u64 {
        self.rng.draw_count()
    }

    /// When this incarnation entered the system (the `now` passed to
    /// [`Node::start`]); used by observers measuring uptime and discovery
    /// delay.
    #[must_use]
    pub fn started_at(&self) -> TimeMs {
        self.started_at
    }

    // ------------------------------------------------------ poll interface

    /// The next outgoing datagram, in FIFO order; `None` when drained.
    #[must_use = "the driver must execute drained transmits"]
    pub fn poll_transmit(&mut self) -> Option<Transmit> {
        self.outbox.pop_front()
    }

    /// The next timer to arm `(timer, fire_at)`, in FIFO order; `None`
    /// when drained.
    #[must_use = "the driver must arm drained timers"]
    pub fn poll_timer(&mut self) -> Option<(Timer, TimeMs)> {
        self.timerbox.pop_front()
    }

    /// The next application event, in FIFO order; `None` when drained.
    #[must_use = "the driver should surface drained events"]
    pub fn poll_event(&mut self) -> Option<AppEvent> {
        self.eventbox.pop_front()
    }

    /// Whether any output (transmit, timer, or event) is waiting to be
    /// drained.
    #[must_use]
    pub fn has_pending_output(&self) -> bool {
        !self.outbox.is_empty() || !self.timerbox.is_empty() || !self.eventbox.is_empty()
    }

    // ------------------------------------------------------------- inputs

    /// Extracts the durable state to be written to persistent storage.
    #[must_use]
    pub fn snapshot_persistent(&self) -> PersistentState {
        PersistentState {
            ps: self.ps.iter().copied().collect(),
            targets: self
                .targets
                .iter()
                .map(|(&id, rec)| (id, rec.clone()))
                .collect(),
        }
    }

    /// Restores durable state after a failure or rejoin.
    ///
    /// Observation-window fields that refer to the node's own past presence
    /// (current session start, unresponsive streak) are reset: while this
    /// node was away it observed nothing.
    pub fn restore_persistent(&mut self, state: PersistentState) {
        self.sets_epoch += 1;
        self.ps = state.ps.into_iter().collect();
        self.targets = state
            .targets
            .into_iter()
            .map(|(id, mut rec)| {
                rec.session_start = None;
                rec.unresponsive_since = None;
                (id, rec)
            })
            .collect();
    }

    /// Pre-populates the coarse view (driver bootstrap for the initial
    /// population, before any JOIN has circulated).
    pub fn seed_view(&mut self, seeds: &[NodeId]) {
        for &s in seeds {
            self.view.insert(s);
        }
    }

    /// Enters the system (Fig. 1). `contact` is any node currently believed
    /// alive; `None` for the very first bootstrap node.
    ///
    /// Queues the JOIN message (weight per `kind`), the init-view request,
    /// and the periodic timers with a random phase (protocol periods are
    /// "executed asynchronously across nodes", §3.2). Drain with the poll
    /// methods.
    pub fn start(&mut self, now: TimeMs, kind: JoinKind, contact: Option<NodeId>) {
        self.started_at = now;
        self.last_monitor_ping_rx = None;
        self.last_view_probe_rx = None;
        self.pr2_last_fired = None;
        self.notified_cleared_at = now;
        self.pending.clear();

        match self.config.discovery {
            DiscoveryMode::Broadcast => {
                let msg = Message::Presence { origin: self.id };
                self.stats.messages_sent += self.config.system_size as u64;
                self.stats.bytes_sent +=
                    codec::encoded_len(&msg) as u64 * self.config.system_size as u64;
                self.outbox.push_back(Transmit {
                    to: Destination::AllNodes,
                    msg,
                });
            }
            DiscoveryMode::CoarseView => {
                self.contact = contact.filter(|&c| c != self.id);
                if let Some(contact) = self.contact {
                    let weight = match kind {
                        JoinKind::Fresh => self.config.cvs as u32,
                        JoinKind::Rejoin { down_duration } => {
                            let periods = down_duration / self.config.protocol_period;
                            (self.config.cvs as u32).min(periods as u32)
                        }
                    };
                    if weight > 0 {
                        self.send(
                            contact,
                            Message::Join {
                                origin: self.id,
                                weight,
                                hops: 0,
                            },
                        );
                    }
                    let nonce = self.begin_request(now, Pending::InitView { peer: contact });
                    self.send(contact, Message::InitViewRequest { nonce });
                }
                // Random phase so periods are asynchronous across nodes.
                let phase = self.rng.gen_range(0..self.config.protocol_period);
                self.arm_timer(Timer::Protocol, now + phase);
            }
        }
        let mphase = self.rng.gen_range(0..self.config.monitoring_period);
        self.arm_timer(Timer::Monitoring, now + mphase);
    }

    /// Processes an incoming message; drain the effects with the poll
    /// methods.
    pub fn handle_message(&mut self, now: TimeMs, from: NodeId, msg: Message) {
        self.stats.messages_received += 1;
        self.stats.bytes_received += codec::encoded_len(&msg) as u64;
        match msg {
            Message::Join {
                origin,
                weight,
                hops,
            } => {
                self.handle_join(now, origin, weight, hops);
            }
            Message::InitViewRequest { nonce } => {
                let view = self.view.as_slice().to_vec();
                self.send(from, Message::InitViewReply { nonce, view });
            }
            Message::InitViewReply { nonce, view } => {
                if let Some(PendingEntry {
                    state: Pending::InitView { peer },
                    ..
                }) = self.pending.remove(&nonce)
                {
                    if peer == from {
                        let mut adopted = 0;
                        for id in view {
                            if self.view.insert(id) {
                                adopted += 1;
                            }
                        }
                        self.emit(AppEvent::ViewInherited { from, adopted });
                    }
                }
            }
            Message::ViewPing { nonce } => {
                self.last_view_probe_rx = Some(now);
                self.send(from, Message::ViewPong { nonce });
            }
            Message::ViewPong { nonce } => {
                if let Some(PendingEntry {
                    state: Pending::ViewPing { peer },
                    ..
                }) = self.pending.get(&nonce)
                {
                    if *peer == from {
                        // Retiring the entry cancels the armed Expire: the
                        // firing fails the liveness check and is discarded
                        // (or dropped by the driver before delivery).
                        self.pending.remove(&nonce);
                    }
                }
            }
            Message::ViewFetch { nonce } => {
                self.last_view_probe_rx = Some(now);
                let view = self.view.as_slice().to_vec();
                self.send(from, Message::ViewFetchReply { nonce, view });
            }
            Message::ViewFetchReply { nonce, view } => {
                if let Some(PendingEntry {
                    state: Pending::ViewFetch { peer },
                    ..
                }) = self.pending.get(&nonce)
                {
                    if *peer == from {
                        self.pending.remove(&nonce);
                        self.process_fetched_view(now, from, &view);
                    }
                }
            }
            Message::Notify { monitor, target } => {
                self.handle_notify(now, monitor, target);
            }
            Message::MonitorPing { nonce } => {
                self.last_monitor_ping_rx = Some(now);
                self.stats.monitor_pings_received += 1;
                self.send(from, Message::MonitorPong { nonce });
            }
            Message::MonitorPong { nonce } => {
                if let Some(PendingEntry {
                    state: Pending::MonitorPing { peer },
                    ..
                }) = self.pending.get(&nonce)
                {
                    if *peer == from {
                        self.pending.remove(&nonce);
                        self.record_pong(now, from);
                    }
                }
            }
            Message::ReportRequest { nonce, count } => {
                self.serve_report(from, nonce, count);
            }
            Message::ReportReply { nonce, monitors } => {
                if let Some(PendingEntry {
                    state: Pending::Report { target },
                    ..
                }) = self.pending.remove(&nonce)
                {
                    if target == from {
                        self.stats.hash_checks += monitors.len() as u64;
                        let verification = self.verify_report_memoized(target, &monitors);
                        self.emit(AppEvent::ReportOutcome {
                            target,
                            verification,
                        });
                    }
                }
            }
            Message::HistoryRequest { nonce, target } => {
                self.serve_history(now, from, nonce, target);
            }
            Message::HistoryReply {
                nonce,
                target,
                availability,
                samples,
            } => {
                if let Some(PendingEntry {
                    state:
                        Pending::History {
                            monitor,
                            target: expected,
                        },
                    ..
                }) = self.pending.remove(&nonce)
                {
                    if monitor == from && target == expected {
                        self.emit(AppEvent::HistoryOutcome {
                            monitor,
                            target,
                            availability,
                            samples,
                        });
                    }
                }
            }
            Message::AddMeRequest => {
                self.view.insert_or_replace(from, &mut self.rng);
            }
            Message::Presence { origin } => {
                self.handle_presence(now, origin);
            }
            Message::AppData { payload } => {
                self.emit(AppEvent::AppData { from, payload });
            }
        }
    }

    /// Processes a fired timer; drain the effects with the poll methods.
    pub fn handle_timer(&mut self, now: TimeMs, timer: Timer) {
        match timer {
            Timer::Protocol => {
                self.protocol_period(now);
                self.arm_timer(Timer::Protocol, now + self.config.protocol_period);
            }
            Timer::Monitoring => {
                self.monitoring_period(now);
                self.arm_timer(Timer::Monitoring, now + self.config.monitoring_period);
            }
            Timer::Expire(nonce) => {
                // Lazy-expiry contract (see [`Timer::Expire`]): fire only
                // while the request is outstanding AND this firing has
                // reached the stamped deadline. Everything else — a ponged
                // request, or a stale firing from an earlier arming of a
                // reused nonce — is discarded in O(1), so a re-armed nonce
                // can never be expired early by its predecessor's timer.
                if self.timer_live(Timer::Expire(nonce), now) {
                    let entry = self
                        .pending
                        .remove(&nonce)
                        .expect("timer_live implies a pending entry");
                    self.handle_expiry(now, entry.state);
                }
            }
        }
    }

    /// Issues a monitor-report request to `target` (the "l out of K" client
    /// side, §3.3). The reply surfaces as [`AppEvent::ReportOutcome`].
    pub fn request_report(&mut self, now: TimeMs, target: NodeId, count: u8) {
        let nonce = self.begin_request(now, Pending::Report { target });
        self.send(target, Message::ReportRequest { nonce, count });
    }

    /// Asks `monitor` for its measured availability of `target`. The reply
    /// surfaces as [`AppEvent::HistoryOutcome`].
    pub fn request_history(&mut self, now: TimeMs, monitor: NodeId, target: NodeId) {
        let nonce = self.begin_request(now, Pending::History { monitor, target });
        self.send(monitor, Message::HistoryRequest { nonce, target });
    }

    /// Sends an opaque application payload to `to` over the overlay
    /// ([`Message::AppData`]). Fire-and-forget: no pending entry, no
    /// timeout — delivery semantics are whatever the transport provides.
    /// Surfaces at the receiver as [`AppEvent::AppData`].
    pub fn send_app(&mut self, to: NodeId, payload: Vec<u8>) {
        self.send(to, Message::AppData { payload });
    }

    fn handle_expiry(&mut self, now: TimeMs, pending: Pending) {
        match pending {
            Pending::ViewPing { peer } | Pending::ViewFetch { peer } => {
                // Fig. 2: "an unresponsive node is removed from the CV". A
                // fetch timeout is treated identically (DESIGN.md note 2).
                if self.view.remove(peer) {
                    self.stats.view_evictions += 1;
                }
            }
            Pending::InitView { .. } => {
                // The contact vanished before supplying a view; the node
                // proceeds with whatever JOIN absorption gives it.
            }
            Pending::MonitorPing { peer } => {
                self.record_miss(now, peer);
            }
            Pending::Report { target } => {
                self.emit(AppEvent::RequestTimedOut { peer: target });
            }
            Pending::History { monitor, .. } => {
                self.emit(AppEvent::RequestTimedOut { peer: monitor });
            }
        }
    }

    /// Evaluates the consistency condition, counting the hash computation.
    ///
    /// `hash_checks` counts condition *evaluations* (the paper's
    /// computation metric), not raw hash invocations — a memo hit still
    /// counts, so the counter is identical with memoization on and off.
    fn check(&mut self, monitor: NodeId, target: NodeId) -> bool {
        self.stats.hash_checks += 1;
        self.condition(monitor, target)
    }

    /// The consistency condition without the counter bump: served from the
    /// pair-point memo when the selector is a pure hash, otherwise straight
    /// from the selector. Pure-hash points never change, so the memoized
    /// and direct answers are always identical.
    fn condition(&mut self, monitor: NodeId, target: NodeId) -> bool {
        match self.memo_threshold {
            Some(threshold) => {
                let selector = &self.selector;
                let point = self.memo.point_with(monitor.to_u64(), target.to_u64(), || {
                    selector
                        .hash_point(monitor, target)
                        .expect("selection_threshold() implies hash_point()")
                });
                threshold.accepts(point)
            }
            None => self.selector.is_monitor(monitor, target),
        }
    }

    /// [`crate::selector::verify_report`] with the condition served
    /// through the node's pair-point memo: same partition, same order, same
    /// rejection of self-claims — the caller accounts `hash_checks` for the
    /// whole claim list exactly as the unmemoized path did.
    fn verify_report_memoized(&mut self, target: NodeId, claimed: &[NodeId]) -> ReportVerification {
        let mut verified = Vec::new();
        let mut rejected = Vec::new();
        for &m in claimed {
            if m != target && self.condition(m, target) {
                verified.push(m);
            } else {
                rejected.push(m);
            }
        }
        ReportVerification {
            target,
            verified,
            rejected,
        }
    }

    /// Queues `msg` to `to`, maintaining send-side accounting.
    pub(super) fn send(&mut self, to: NodeId, msg: Message) {
        debug_assert_ne!(to, self.id, "nodes never message themselves");
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += codec::encoded_len(&msg) as u64;
        self.outbox.push_back(Transmit {
            to: Destination::Node(to),
            msg,
        });
    }

    /// Queues a timer request.
    fn arm_timer(&mut self, timer: Timer, at: TimeMs) {
        self.timerbox.push_back((timer, at));
    }

    /// Registers an outstanding request: draws a fresh nonce, stamps the
    /// expiry deadline (`now + ping_timeout`) on the pending table, and
    /// arms the matching [`Timer::Expire`]. The single entry point keeps
    /// the deadline stamp and the armed timer in lockstep — the invariant
    /// the lazy-expiry contract rests on.
    fn begin_request(&mut self, now: TimeMs, state: Pending) -> Nonce {
        let nonce = self.fresh_nonce();
        let deadline = now + self.config.ping_timeout;
        self.pending.insert(nonce, PendingEntry { state, deadline });
        self.arm_timer(Timer::Expire(nonce), deadline);
        nonce
    }

    /// Whether firing `timer` at `now` would do any work — the driver-side
    /// half of the lazy-expiry contract on [`Timer::Expire`]. Periodic
    /// timers are always live; an `Expire` is live only while its request
    /// is still outstanding and `now` has reached the stamped deadline.
    /// Drivers may drop dead timers instead of delivering them; only call
    /// this for timers that are actually due (`now ≥` their armed time).
    #[must_use]
    pub fn timer_live(&self, timer: Timer, now: TimeMs) -> bool {
        match timer {
            Timer::Expire(nonce) => self
                .pending
                .get(&nonce)
                .is_some_and(|entry| now >= entry.deadline),
            _ => true,
        }
    }

    /// Queues an application event.
    fn emit(&mut self, event: AppEvent) {
        self.eventbox.push_back(event);
    }

    fn fresh_nonce(&mut self) -> Nonce {
        loop {
            let nonce = Nonce(self.rng.gen());
            if !self.pending.contains_key(&nonce) {
                return nonce;
            }
        }
    }
}
