//! Availability monitoring: periodic pings to the target set, forgetful
//! pinging (§3.3), and the report/history services.
//!
//! All effects are queued on the node's internal output queues and drained
//! by the driver through the poll interface.

use rand::Rng;

use super::{Node, Pending};
use crate::history::AvailabilityStore;
use crate::message::{Message, Nonce};
use crate::time::TimeMs;
use crate::NodeId;

impl Node {
    /// One monitoring period (§3.3): ping every target in `TS(x)`, subject
    /// to the forgetful-pinging schedule for unresponsive targets.
    pub(super) fn monitoring_period(&mut self, now: TimeMs) {
        // Decide which targets to ping. (Collected first: the send path
        // needs `&mut self`.)
        let mut to_ping: Vec<NodeId> = Vec::with_capacity(self.targets.len());
        let mut suppressed = 0u64;
        for (&target, rec) in &self.targets {
            let ping = match (self.config.forgetful, rec.unresponsive_since) {
                (Some(f), Some(since)) if now.saturating_sub(since) > f.tau => {
                    // Forgetful pinging: probability c·ts/(ts+t). `ts` is
                    // floored at one monitoring period — a target that was
                    // never seen up would otherwise be dropped forever.
                    let t = now.saturating_sub(since) as f64;
                    let ts = rec.last_session.max(self.config.monitoring_period) as f64;
                    let p = (f.c * ts / (ts + t)).clamp(0.0, 1.0);
                    self.rng.gen_bool(p)
                }
                _ => true,
            };
            if ping {
                to_ping.push(target);
            } else {
                suppressed += 1;
            }
        }
        self.stats.monitor_pings_suppressed += suppressed;

        for target in to_ping {
            let nonce = self.begin_request(now, Pending::MonitorPing { peer: target });
            self.send(target, Message::MonitorPing { nonce });
            self.stats.monitor_pings_sent += 1;
            if let Some(rec) = self.targets.get_mut(&target) {
                rec.pings_sent += 1;
            }
        }
    }

    /// A target answered its monitoring ping.
    pub(super) fn record_pong(&mut self, now: TimeMs, target: NodeId) {
        self.stats.monitor_pongs_received += 1;
        let mut resumed = false;
        if let Some(rec) = self.targets.get_mut(&target) {
            rec.pongs_received += 1;
            rec.history.record(now, true);
            if rec.unresponsive_since.take().is_some() {
                // The target just came back: a new observed up-session
                // begins and the suspicion is retracted.
                rec.session_start = Some(now);
                resumed = true;
            } else if rec.session_start.is_none() {
                // The very first observation also opens an up-session.
                rec.session_start = Some(now);
            }
            rec.last_pong = Some(now);
        }
        if resumed {
            self.emit(super::AppEvent::TargetResponsive { target });
        }
    }

    /// A monitoring ping to `target` timed out.
    pub(super) fn record_miss(&mut self, now: TimeMs, target: NodeId) {
        let mut suspected = false;
        if let Some(rec) = self.targets.get_mut(&target) {
            rec.history.record(now, false);
            if rec.unresponsive_since.is_none() {
                rec.unresponsive_since = Some(now);
                suspected = true;
                // Close the observed up-session: ts(u) := its length.
                if let (Some(start), Some(last)) = (rec.session_start.take(), rec.last_pong) {
                    rec.last_session = last.saturating_sub(start);
                }
            }
        }
        if suspected {
            self.emit(super::AppEvent::TargetUnresponsive { target });
        }
    }

    /// §3.3 report service: "it is the burden of node x to report to node y
    /// the requisite number of its monitoring nodes". A selfish advertiser
    /// substitutes its fake list — which verification then rejects.
    pub(super) fn serve_report(&mut self, from: NodeId, nonce: Nonce, count: u8) {
        let monitors: Vec<NodeId> = match self.behavior.fake_report() {
            Some(fakes) => fakes.iter().copied().take(usize::from(count)).collect(),
            None => {
                // Any `l` of PS(x) will do; sample without replacement.
                let mut candidates: Vec<NodeId> = self.ps.iter().copied().collect();
                let take = usize::from(count).min(candidates.len());
                for i in 0..take {
                    let j = self.rng.gen_range(i..candidates.len());
                    candidates.swap(i, j);
                }
                candidates.truncate(take);
                candidates
            }
        };
        self.send(from, Message::ReportReply { nonce, monitors });
    }

    /// Availability-history service: answers with the measured estimate, or
    /// a misreported 100% under the overreporting / collusion behaviors.
    pub(super) fn serve_history(
        &mut self,
        now: TimeMs,
        from: NodeId,
        nonce: Nonce,
        target: NodeId,
    ) {
        let (availability, samples) = if self.behavior.misreports(target) {
            let samples = self.targets.get(&target).map_or(0, |r| r.pings_sent);
            (Some(1.0), samples)
        } else {
            match self.targets.get(&target) {
                Some(rec) => {
                    // Prefer the history store's estimator when it has data;
                    // fall back to the raw ping-fraction estimate.
                    let a = rec
                        .history
                        .availability(now)
                        .or_else(|| rec.availability_estimate());
                    (a, rec.pings_sent)
                }
                None => (None, 0),
            }
        };
        self.send(
            from,
            Message::HistoryReply {
                nonce,
                target,
                availability,
                samples,
            },
        );
    }
}
