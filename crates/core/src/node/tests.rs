//! Unit tests driving a single [`Node`] with hand-crafted inputs through
//! the poll interface.

// Test module: tests are exempt from the determinism lints.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::collections::HashSet;
use std::sync::Arc;

use super::*;
use crate::behavior::Behavior;
use crate::config::{Config, DiscoveryMode};
use crate::selector::MonitorSelector;
use crate::time::MINUTE;

/// A selector accepting exactly the programmed ordered pairs.
#[derive(Debug, Default)]
struct TestSelector {
    pairs: HashSet<(NodeId, NodeId)>,
}

impl TestSelector {
    fn with_pairs(pairs: &[(NodeId, NodeId)]) -> SharedSelector {
        Arc::new(TestSelector {
            pairs: pairs.iter().copied().collect(),
        })
    }

    fn none() -> SharedSelector {
        Arc::new(TestSelector::default())
    }
}

impl MonitorSelector for TestSelector {
    fn is_monitor(&self, monitor: NodeId, target: NodeId) -> bool {
        self.pairs.contains(&(monitor, target))
    }

    fn name(&self) -> &'static str {
        "test"
    }
}

type Actions = Vec<Action>;

/// Drains every queued output of `n` into the unified [`Action`] stream
/// (transmits, then timers, then events — each FIFO).
use crate::driver::collect_actions as drain;

fn id(i: u32) -> NodeId {
    NodeId::from_index(i)
}

fn config(n: usize) -> Config {
    Config::builder(n).build().unwrap()
}

fn mk_node(i: u32, cfg: Config, selector: SharedSelector) -> Node {
    Node::new(id(i), cfg, selector, u64::from(i) + 1)
}

fn sends(actions: &Actions) -> Vec<(NodeId, Message)> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Send { to, msg } => Some((*to, msg.clone())),
            _ => None,
        })
        .collect()
}

fn timers(actions: &Actions) -> Vec<(Timer, TimeMs)> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::SetTimer { timer, at } => Some((*timer, *at)),
            _ => None,
        })
        .collect()
}

fn events(actions: &Actions) -> Vec<AppEvent> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::App(e) => Some(e.clone()),
            _ => None,
        })
        .collect()
}

// ------------------------------------------------------------ poll order

#[test]
fn poll_queues_drain_fifo_and_then_return_none() {
    let mut n = mk_node(1, config(100), TestSelector::none());
    n.seed_view(&[id(2), id(3), id(4)]);
    n.handle_timer(MINUTE, Timer::Protocol);
    assert!(n.has_pending_output());

    // Transmits drain in the order they were queued (ping before fetch),
    // then the queue stays empty.
    let mut msgs = Vec::new();
    while let Some(t) = n.poll_transmit() {
        msgs.push(t.msg);
    }
    assert!(matches!(msgs[0], Message::ViewPing { .. }));
    assert!(matches!(msgs[1], Message::ViewFetch { .. }));
    assert_eq!(msgs.len(), 2);
    assert!(
        n.poll_transmit().is_none(),
        "drained transmit queue yields None"
    );

    // Timers likewise: the two expiries precede the period re-arm because
    // they were queued first.
    let mut tms = Vec::new();
    while let Some(t) = n.poll_timer() {
        tms.push(t);
    }
    assert_eq!(tms.len(), 3);
    assert!(matches!(tms[0].0, Timer::Expire(_)));
    assert!(matches!(tms[1].0, Timer::Expire(_)));
    assert_eq!(
        tms[2],
        (Timer::Protocol, MINUTE + n.config().protocol_period)
    );
    assert!(n.poll_timer().is_none());

    assert!(n.poll_event().is_none());
    assert!(!n.has_pending_output());
}

#[test]
fn poll_output_accumulates_across_inputs_in_order() {
    // Two inputs without an intervening drain: outputs concatenate FIFO.
    let selector = TestSelector::with_pairs(&[(id(2), id(1)), (id(3), id(1))]);
    let mut n = mk_node(1, config(100), selector);
    n.handle_message(
        0,
        id(9),
        Message::Notify {
            monitor: id(2),
            target: id(1),
        },
    );
    n.handle_message(
        0,
        id(9),
        Message::Notify {
            monitor: id(3),
            target: id(1),
        },
    );
    assert_eq!(
        [n.poll_event().unwrap(), n.poll_event().unwrap()],
        [
            AppEvent::MonitorDiscovered { monitor: id(2) },
            AppEvent::MonitorDiscovered { monitor: id(3) },
        ],
    );
    assert!(n.poll_event().is_none());
}

// ---------------------------------------------------------------- joining

#[test]
fn fresh_join_sends_weight_cvs_and_inherits_view() {
    let cfg = config(100); // cvs = 4·100^{1/4} = 13
    let mut n = mk_node(1, cfg.clone(), TestSelector::none());
    n.start(0, JoinKind::Fresh, Some(id(2)));
    let actions = drain(&mut n);
    let sent = sends(&actions);
    assert!(sent.iter().any(|(to, m)| {
        *to == id(2)
            && matches!(m, Message::Join { origin, weight, hops: 0 }
                if *origin == id(1) && *weight == cfg.cvs as u32)
    }));
    assert!(sent
        .iter()
        .any(|(to, m)| *to == id(2) && matches!(m, Message::InitViewRequest { .. })));
    // Protocol + monitoring timers armed (plus the init-view expiry).
    let t = timers(&actions);
    assert!(t.iter().any(|(timer, _)| *timer == Timer::Protocol));
    assert!(t.iter().any(|(timer, _)| *timer == Timer::Monitoring));
}

#[test]
fn rejoin_weight_is_min_cvs_downperiods() {
    let cfg = config(100);
    let period = cfg.protocol_period;
    // Down for 3 protocol periods -> weight 3 (< cvs).
    let mut n = mk_node(1, cfg.clone(), TestSelector::none());
    n.start(
        0,
        JoinKind::Rejoin {
            down_duration: 3 * period,
        },
        Some(id(2)),
    );
    assert!(sends(&drain(&mut n))
        .iter()
        .any(|(_, m)| matches!(m, Message::Join { weight: 3, .. })));
    // Down for ages -> weight capped at cvs.
    let mut n2 = mk_node(3, cfg.clone(), TestSelector::none());
    n2.start(
        0,
        JoinKind::Rejoin {
            down_duration: 10_000 * period,
        },
        Some(id(2)),
    );
    let want = cfg.cvs as u32;
    assert!(sends(&drain(&mut n2))
        .iter()
        .any(|(_, m)| matches!(m, Message::Join { weight, .. } if *weight == want)));
    // Down for less than one period -> no JOIN at all (weight 0), but the
    // init-view request still goes out.
    let mut n3 = mk_node(4, cfg, TestSelector::none());
    n3.start(0, JoinKind::Rejoin { down_duration: 10 }, Some(id(2)));
    let sent3 = sends(&drain(&mut n3));
    assert!(!sent3.iter().any(|(_, m)| matches!(m, Message::Join { .. })));
    assert!(sent3
        .iter()
        .any(|(_, m)| matches!(m, Message::InitViewRequest { .. })));
}

#[test]
fn bootstrap_node_without_contact_sends_nothing() {
    let mut n = mk_node(1, config(100), TestSelector::none());
    n.start(0, JoinKind::Fresh, None);
    let actions = drain(&mut n);
    assert!(sends(&actions).is_empty());
    assert_eq!(timers(&actions).len(), 2); // protocol + monitoring
}

#[test]
fn join_absorption_decrements_and_splits() {
    let cfg = config(100);
    let mut n = mk_node(1, cfg, TestSelector::none());
    n.seed_view(&[id(10), id(11), id(12)]);
    // JOIN(x=5, c=7): absorb (c→6), forward 3 and 3.
    n.handle_message(
        0,
        id(10),
        Message::Join {
            origin: id(5),
            weight: 7,
            hops: 0,
        },
    );
    let actions = drain(&mut n);
    assert!(n.view().contains(id(5)));
    assert!(events(&actions).contains(&AppEvent::JoinAbsorbed { origin: id(5) }));
    let forwards: Vec<u32> = sends(&actions)
        .iter()
        .filter_map(|(_, m)| match m {
            Message::Join {
                weight,
                hops: 1,
                origin,
            } if *origin == id(5) => Some(*weight),
            _ => None,
        })
        .collect();
    assert_eq!(forwards.iter().sum::<u32>(), 6);
    assert_eq!(forwards.len(), 2);
    // Forwards never go back to the joiner itself.
    for (to, m) in sends(&actions) {
        if matches!(m, Message::Join { .. }) {
            assert_ne!(to, id(5));
        }
    }
}

#[test]
fn join_already_known_forwards_full_weight() {
    let mut n = mk_node(1, config(100), TestSelector::none());
    n.seed_view(&[id(5), id(10)]);
    n.handle_message(
        0,
        id(10),
        Message::Join {
            origin: id(5),
            weight: 4,
            hops: 0,
        },
    );
    let forwards: Vec<u32> = sends(&drain(&mut n))
        .iter()
        .filter_map(|(_, m)| match m {
            Message::Join { weight, .. } => Some(*weight),
            _ => None,
        })
        .collect();
    assert_eq!(
        forwards.iter().sum::<u32>(),
        4,
        "no decrement when already present"
    );
}

#[test]
fn join_weight_one_absorbed_without_forwarding() {
    let mut n = mk_node(1, config(100), TestSelector::none());
    n.seed_view(&[id(10)]);
    n.handle_message(
        0,
        id(10),
        Message::Join {
            origin: id(5),
            weight: 1,
            hops: 0,
        },
    );
    let actions = drain(&mut n);
    assert!(n.view().contains(id(5)));
    assert!(sends(&actions)
        .iter()
        .all(|(_, m)| !matches!(m, Message::Join { .. })));
}

#[test]
fn join_respects_hop_limit() {
    let cfg = config(100);
    let limit = cfg.join_hop_limit;
    let mut n = mk_node(1, cfg, TestSelector::none());
    n.seed_view(&[id(10)]);
    n.handle_message(
        0,
        id(10),
        Message::Join {
            origin: id(5),
            weight: 5,
            hops: limit,
        },
    );
    assert!(sends(&drain(&mut n)).is_empty());
    assert!(
        !n.view().contains(id(5)),
        "hop-limited JOINs are dropped entirely"
    );
}

#[test]
fn join_for_self_is_not_absorbed() {
    let mut n = mk_node(1, config(100), TestSelector::none());
    n.seed_view(&[id(10), id(11)]);
    let before = n.view().len();
    n.handle_message(
        0,
        id(10),
        Message::Join {
            origin: id(1),
            weight: 3,
            hops: 0,
        },
    );
    let actions = drain(&mut n);
    assert_eq!(n.view().len(), before);
    assert!(!n.view().contains(id(1)));
    // Full weight forwarded (no decrement).
    let total: u32 = sends(&actions)
        .iter()
        .filter_map(|(_, m)| match m {
            Message::Join { weight, .. } => Some(*weight),
            _ => None,
        })
        .sum();
    assert_eq!(total, 3);
}

#[test]
fn init_view_reply_is_adopted() {
    let mut n = mk_node(1, config(100), TestSelector::none());
    n.start(0, JoinKind::Fresh, Some(id(2)));
    let nonce = sends(&drain(&mut n))
        .iter()
        .find_map(|(_, m)| match m {
            Message::InitViewRequest { nonce } => Some(*nonce),
            _ => None,
        })
        .unwrap();
    let reply = Message::InitViewReply {
        nonce,
        view: vec![id(3), id(4), id(1)],
    };
    n.handle_message(10, id(2), reply);
    let actions2 = drain(&mut n);
    assert!(n.view().contains(id(3)));
    assert!(n.view().contains(id(4)));
    assert!(!n.view().contains(id(1)), "own id filtered");
    assert!(events(&actions2)
        .iter()
        .any(|e| matches!(e, AppEvent::ViewInherited { from, adopted: 2 } if *from == id(2))));
}

// ------------------------------------------------------------ maintenance

#[test]
fn protocol_period_pings_and_fetches() {
    let mut n = mk_node(1, config(100), TestSelector::none());
    n.seed_view(&[id(2), id(3), id(4)]);
    n.handle_timer(MINUTE, Timer::Protocol);
    let actions = drain(&mut n);
    let sent = sends(&actions);
    assert_eq!(
        sent.iter()
            .filter(|(_, m)| matches!(m, Message::ViewPing { .. }))
            .count(),
        1
    );
    assert_eq!(
        sent.iter()
            .filter(|(_, m)| matches!(m, Message::ViewFetch { .. }))
            .count(),
        1
    );
    // Re-arms itself.
    assert!(timers(&actions)
        .iter()
        .any(|(t, at)| *t == Timer::Protocol && *at == 2 * MINUTE));
}

#[test]
fn empty_view_retries_join_through_contact() {
    let mut n = mk_node(1, config(100), TestSelector::none());
    n.start(0, JoinKind::Fresh, Some(id(2)));
    let _ = drain(&mut n);
    // Suppose the JOIN and the view reply were both lost: the view is
    // still empty at the first protocol period, so the node retries.
    n.handle_timer(MINUTE, Timer::Protocol);
    let sent = sends(&drain(&mut n));
    assert!(sent
        .iter()
        .any(|(to, m)| *to == id(2) && matches!(m, Message::Join { hops: 0, .. })));
    assert!(sent
        .iter()
        .any(|(to, m)| *to == id(2) && matches!(m, Message::InitViewRequest { .. })));
    // Once the view is populated, retries stop.
    n.seed_view(&[id(3)]);
    n.handle_timer(2 * MINUTE, Timer::Protocol);
    assert!(!sends(&drain(&mut n))
        .iter()
        .any(|(_, m)| matches!(m, Message::Join { .. })));
    // A bootstrap node (no contact) with an empty view stays quiet.
    let mut boot = mk_node(9, config(100), TestSelector::none());
    boot.start(0, JoinKind::Fresh, None);
    let _ = drain(&mut boot);
    boot.handle_timer(MINUTE, Timer::Protocol);
    assert!(sends(&drain(&mut boot)).is_empty());
}

#[test]
fn unresponsive_view_entry_is_removed_on_timeout() {
    let mut n = mk_node(1, config(100), TestSelector::none());
    n.seed_view(&[id(2)]);
    n.handle_timer(MINUTE, Timer::Protocol);
    let expire_timers: Vec<(Timer, TimeMs)> = timers(&drain(&mut n))
        .into_iter()
        .filter(|(t, _)| matches!(t, Timer::Expire(_)))
        .collect();
    assert!(!expire_timers.is_empty());
    for (t, at) in expire_timers {
        n.handle_timer(at, t);
    }
    let _ = drain(&mut n);
    assert!(!n.view().contains(id(2)));
    assert!(n.stats().view_evictions >= 1);
}

#[test]
fn pong_prevents_removal() {
    let mut n = mk_node(1, config(100), TestSelector::none());
    n.seed_view(&[id(2)]);
    n.handle_timer(MINUTE, Timer::Protocol);
    let actions = drain(&mut n);
    // Answer both the ping and the fetch.
    for (to, m) in sends(&actions) {
        assert_eq!(to, id(2));
        match m {
            Message::ViewPing { nonce } => {
                n.handle_message(MINUTE + 1, id(2), Message::ViewPong { nonce });
            }
            Message::ViewFetch { nonce } => {
                n.handle_message(
                    MINUTE + 1,
                    id(2),
                    Message::ViewFetchReply {
                        nonce,
                        view: vec![],
                    },
                );
            }
            _ => {}
        }
    }
    let _ = drain(&mut n);
    // Let the expire timers fire late: nothing should be pending.
    for (t, at) in timers(&actions) {
        if matches!(t, Timer::Expire(_)) {
            n.handle_timer(at, t);
        }
    }
    let _ = drain(&mut n);
    assert!(n.view().contains(id(2)), "responsive entries stay");
    assert_eq!(n.stats().view_evictions, 0);
}

#[test]
fn fetch_reply_discovers_planted_pair_and_notifies_both() {
    // Plant: u=3 monitors v=4. Node 1 fetches from w=2 whose view has 4;
    // node 1's own view has 3.
    let selector = TestSelector::with_pairs(&[(id(3), id(4))]);
    let mut n = mk_node(1, config(100), selector);
    n.seed_view(&[id(2), id(3)]);
    n.handle_timer(MINUTE, Timer::Protocol);
    let p = drain(&mut n);
    let fetch_nonce = sends(&p)
        .iter()
        .find_map(|(_, m)| match m {
            Message::ViewFetch { nonce } => Some(*nonce),
            _ => None,
        })
        .unwrap();
    let fetch_peer = sends(&p)
        .iter()
        .find_map(|(to, m)| matches!(m, Message::ViewFetch { .. }).then_some(*to))
        .unwrap();
    n.handle_message(
        MINUTE + 5,
        fetch_peer,
        Message::ViewFetchReply {
            nonce: fetch_nonce,
            view: vec![id(3), id(4)],
        },
    );
    let actions = drain(&mut n);
    let notifies: Vec<(NodeId, NodeId, NodeId)> = sends(&actions)
        .iter()
        .filter_map(|(to, m)| match m {
            Message::Notify { monitor, target } => Some((*to, *monitor, *target)),
            _ => None,
        })
        .collect();
    // Both endpoints get NOTIFY(3,4), exactly once each.
    assert!(notifies.contains(&(id(3), id(3), id(4))));
    assert!(notifies.contains(&(id(4), id(3), id(4))));
    assert_eq!(notifies.len(), 2, "dedup inside one exchange");
    assert!(n.stats().hash_checks > 0);
}

#[test]
fn fetch_reply_involving_self_updates_own_sets_directly() {
    // Plant: node 1 monitors node 9 (1 ∈ PS(9)), and node 9 monitors node 1.
    let selector = TestSelector::with_pairs(&[(id(1), id(9)), (id(9), id(1))]);
    let mut n = mk_node(1, config(100), selector);
    n.seed_view(&[id(2)]);
    n.handle_timer(MINUTE, Timer::Protocol);
    let fetch_nonce = sends(&drain(&mut n))
        .iter()
        .find_map(|(_, m)| match m {
            Message::ViewFetch { nonce } => Some(*nonce),
            _ => None,
        })
        .unwrap();
    n.handle_message(
        MINUTE + 5,
        id(2),
        Message::ViewFetchReply {
            nonce: fetch_nonce,
            view: vec![id(9)],
        },
    );
    let actions = drain(&mut n);
    // Node 1 adopted 9 as target and as monitor, locally.
    assert!(n.target_set().any(|t| t == id(9)));
    assert!(n.pinging_set().any(|m| m == id(9)));
    let evs = events(&actions);
    assert!(evs.contains(&AppEvent::TargetDiscovered { target: id(9) }));
    assert!(evs.contains(&AppEvent::MonitorDiscovered { monitor: id(9) }));
    // And 9 was notified of both relationships.
    let to_nine = sends(&actions)
        .iter()
        .filter(|(to, m)| *to == id(9) && matches!(m, Message::Notify { .. }))
        .count();
    assert_eq!(to_nine, 2);
}

#[test]
fn stale_fetch_reply_from_wrong_peer_is_ignored() {
    let mut n = mk_node(1, config(100), TestSelector::with_pairs(&[(id(3), id(4))]));
    n.seed_view(&[id(2)]);
    n.handle_timer(MINUTE, Timer::Protocol);
    let fetch_nonce = sends(&drain(&mut n))
        .iter()
        .find_map(|(_, m)| match m {
            Message::ViewFetch { nonce } => Some(*nonce),
            _ => None,
        })
        .unwrap();
    // Reply arrives from an unexpected node: ignored.
    n.handle_message(
        MINUTE + 5,
        id(99),
        Message::ViewFetchReply {
            nonce: fetch_nonce,
            view: vec![id(3), id(4)],
        },
    );
    assert!(sends(&drain(&mut n)).is_empty());
}

#[test]
fn shuffle_after_fetch_keeps_view_bounded() {
    let cfg = config(100);
    let cvs = cfg.cvs;
    let mut n = mk_node(1, cfg, TestSelector::none());
    let seeds: Vec<NodeId> = (2..2 + cvs as u32).map(id).collect();
    n.seed_view(&seeds);
    n.handle_timer(MINUTE, Timer::Protocol);
    let (peer, nonce) = sends(&drain(&mut n))
        .iter()
        .find_map(|(to, m)| match m {
            Message::ViewFetch { nonce } => Some((*to, *nonce)),
            _ => None,
        })
        .unwrap();
    let big_view: Vec<NodeId> = (100..100 + cvs as u32 * 2).map(id).collect();
    n.handle_message(
        MINUTE + 1,
        peer,
        Message::ViewFetchReply {
            nonce,
            view: big_view,
        },
    );
    let _ = drain(&mut n);
    assert!(n.view().len() <= cvs);
}

// ---------------------------------------------------------------- NOTIFY

#[test]
fn notify_is_verified_before_acceptance() {
    let selector = TestSelector::with_pairs(&[(id(2), id(1))]);
    let mut n = mk_node(1, config(100), selector);
    // Valid claim: 2 monitors 1.
    n.handle_message(
        0,
        id(9),
        Message::Notify {
            monitor: id(2),
            target: id(1),
        },
    );
    assert!(events(&drain(&mut n)).contains(&AppEvent::MonitorDiscovered { monitor: id(2) }));
    assert_eq!(n.pinging_set_len(), 1);
    // Bogus claim: 3 does not monitor 1.
    n.handle_message(
        0,
        id(9),
        Message::Notify {
            monitor: id(3),
            target: id(1),
        },
    );
    assert!(events(&drain(&mut n)).is_empty());
    assert_eq!(n.pinging_set_len(), 1, "unverified NOTIFY rejected");
    // Duplicate claim: no duplicate event.
    n.handle_message(
        0,
        id(9),
        Message::Notify {
            monitor: id(2),
            target: id(1),
        },
    );
    assert!(events(&drain(&mut n)).is_empty());
}

#[test]
fn notify_target_direction_populates_ts() {
    let selector = TestSelector::with_pairs(&[(id(1), id(5))]);
    let mut n = mk_node(1, config(100), selector);
    n.handle_message(
        7,
        id(9),
        Message::Notify {
            monitor: id(1),
            target: id(5),
        },
    );
    assert!(events(&drain(&mut n)).contains(&AppEvent::TargetDiscovered { target: id(5) }));
    assert_eq!(n.target_set_len(), 1);
    let rec = n.target_record(id(5)).unwrap();
    assert_eq!(rec.discovered_at, 7);
    // Notify about an unrelated pair: ignored.
    n.handle_message(
        8,
        id(9),
        Message::Notify {
            monitor: id(7),
            target: id(8),
        },
    );
    assert!(events(&drain(&mut n)).is_empty());
}

// ------------------------------------------------------------- monitoring

/// Drives `n` through one monitoring period, answering pings per `up`.
fn run_monitoring_round(n: &mut Node, now: TimeMs, up: bool) {
    n.handle_timer(now, Timer::Monitoring);
    let actions = drain(n);
    for (to, m) in sends(&actions) {
        if let Message::MonitorPing { nonce } = m {
            if up {
                n.handle_message(now + 10, to, Message::MonitorPong { nonce });
            }
        }
    }
    // Fire the expiry timers.
    for (t, at) in timers(&actions) {
        if matches!(t, Timer::Expire(_)) {
            n.handle_timer(at, t);
        }
    }
    let _ = drain(n);
}

fn node_with_target(i: u32, t: u32) -> Node {
    node_with_target_config(i, t, config(100))
}

fn node_with_target_config(i: u32, t: u32, cfg: Config) -> Node {
    let selector = TestSelector::with_pairs(&[(id(i), id(t))]);
    let mut n = Node::new(id(i), cfg, selector, u64::from(i) + 1);
    n.handle_message(
        0,
        id(9),
        Message::Notify {
            monitor: id(i),
            target: id(t),
        },
    );
    let _ = drain(&mut n);
    assert_eq!(n.target_set_len(), 1);
    n
}

#[test]
fn monitoring_estimates_availability_fraction() {
    // Forgetful pinging off: every period must ping, so the estimator is
    // exactly pongs/pings regardless of the RNG stream.
    let cfg = Config::builder(100).forgetful(None).build().unwrap();
    let mut n = node_with_target_config(1, 5, cfg);
    // 6 answered rounds, 4 unanswered.
    for round in 0..10u64 {
        run_monitoring_round(&mut n, (round + 1) * MINUTE, round < 6);
    }
    let est = n.availability_estimate(id(5)).unwrap();
    assert!((est - 0.6).abs() < 1e-9, "estimate {est}");
    let rec = n.target_record(id(5)).unwrap();
    assert_eq!(rec.pings_sent, 10);
    assert_eq!(rec.pongs_received, 6);
}

#[test]
fn miss_closes_session_and_records_ts() {
    let mut n = node_with_target(1, 5);
    // Up for rounds 1..=5, then down.
    for round in 1..=5u64 {
        run_monitoring_round(&mut n, round * MINUTE, true);
    }
    run_monitoring_round(&mut n, 6 * MINUTE, false);
    let rec = n.target_record(id(5)).unwrap();
    assert!(rec.unresponsive_since.is_some());
    // Observed session: first pong at ~1min, last at ~5min → ts ≈ 4 min.
    assert_eq!(rec.last_session, 4 * MINUTE);
}

#[test]
fn forgetful_pinging_suppresses_dead_targets() {
    let mut n = node_with_target(1, 5);
    // One up round (short session), then dead for many rounds.
    run_monitoring_round(&mut n, MINUTE, true);
    let mut sent_after_tau = 0u64;
    let before = n.stats().monitor_pings_sent;
    for round in 2..200u64 {
        run_monitoring_round(&mut n, round * MINUTE, false);
    }
    sent_after_tau += n.stats().monitor_pings_sent - before;
    // Without forgetful pinging this would be 198 pings. With τ=2 min and
    // ts = 1 monitoring period the expected count is roughly
    // Σ c·ts/(ts+t) ≈ ln(200) ≈ 5.3. Allow generous slack.
    assert!(
        sent_after_tau < 60,
        "forgetful pinging should suppress most pings, sent {sent_after_tau}"
    );
    assert!(n.stats().monitor_pings_suppressed > 100);
}

#[test]
fn non_forgetful_config_pings_every_period() {
    let cfg = Config::builder(100).forgetful(None).build().unwrap();
    let selector = TestSelector::with_pairs(&[(id(1), id(5))]);
    let mut n = Node::new(id(1), cfg, selector, 3);
    n.handle_message(
        0,
        id(9),
        Message::Notify {
            monitor: id(1),
            target: id(5),
        },
    );
    let _ = drain(&mut n);
    for round in 1..50u64 {
        run_monitoring_round(&mut n, round * MINUTE, false);
    }
    assert_eq!(n.stats().monitor_pings_sent, 49);
    assert_eq!(n.stats().monitor_pings_suppressed, 0);
}

#[test]
fn forgetful_target_revives_on_return() {
    let mut n = node_with_target(1, 5);
    // A long observed session (rounds 1..=30) so ts(u) ≈ 29 minutes, giving
    // revival probability ts/(ts+t) ≈ 0.3 per round after the outage.
    for round in 1..=30u64 {
        run_monitoring_round(&mut n, round * MINUTE, true);
    }
    for round in 31..100u64 {
        run_monitoring_round(&mut n, round * MINUTE, false);
    }
    // The target comes back; once a (probabilistic) ping reaches it, the
    // unresponsive streak resets and pinging resumes every period.
    let mut revived_at = None;
    for round in 100..400u64 {
        let before = n.target_record(id(5)).unwrap().pongs_received;
        run_monitoring_round(&mut n, round * MINUTE, true);
        if n.target_record(id(5)).unwrap().pongs_received > before {
            revived_at = Some(round);
            break;
        }
    }
    let revived = revived_at.expect("forgetful pinging must eventually re-probe");
    let rec = n.target_record(id(5)).unwrap();
    assert!(
        rec.unresponsive_since.is_none(),
        "streak reset after revival"
    );
    // After revival, every period pings again.
    let before = rec.pings_sent;
    for round in (revived + 1)..(revived + 6) {
        run_monitoring_round(&mut n, round * MINUTE, true);
    }
    assert_eq!(n.target_record(id(5)).unwrap().pings_sent - before, 5);
}

#[test]
fn monitor_ping_receipt_is_answered_and_tracked() {
    let mut n = mk_node(1, config(100), TestSelector::none());
    n.handle_message(5, id(2), Message::MonitorPing { nonce: Nonce(77) });
    assert_eq!(
        sends(&drain(&mut n)),
        vec![(id(2), Message::MonitorPong { nonce: Nonce(77) })]
    );
    assert_eq!(n.stats().monitor_pings_received, 1);
}

// ---------------------------------------------------------------- reports

#[test]
fn honest_report_returns_subset_of_ps() {
    let selector = TestSelector::with_pairs(&[(id(2), id(1)), (id(3), id(1)), (id(4), id(1))]);
    let mut n = mk_node(1, config(100), selector);
    for m in [2, 3, 4] {
        n.handle_message(
            0,
            id(9),
            Message::Notify {
                monitor: id(m),
                target: id(1),
            },
        );
    }
    let _ = drain(&mut n);
    n.handle_message(
        1,
        id(7),
        Message::ReportRequest {
            nonce: Nonce(5),
            count: 2,
        },
    );
    let reply = sends(&drain(&mut n));
    let Message::ReportReply { nonce, monitors } = &reply[0].1 else {
        panic!("expected report reply");
    };
    assert_eq!(*nonce, Nonce(5));
    assert_eq!(monitors.len(), 2);
    for m in monitors {
        assert!(n.pinging_set().any(|p| p == *m));
    }
}

#[test]
fn selfish_advertiser_is_caught_by_verification() {
    let selector = TestSelector::with_pairs(&[(id(2), id(1))]);
    // Node 1's true monitor is 2, but it advertises its friend 66.
    let mut liar = mk_node(1, config(100), selector.clone());
    liar.set_behavior(Behavior::SelfishAdvertiser {
        fake_monitors: vec![id(66)],
    });
    liar.handle_message(
        0,
        id(9),
        Message::Notify {
            monitor: id(2),
            target: id(1),
        },
    );
    let _ = drain(&mut liar);

    let mut verifier = mk_node(7, config(100), selector);
    verifier.request_report(0, id(1), 2);
    let (to, Message::ReportRequest { nonce, count }) = sends(&drain(&mut verifier))[0].clone()
    else {
        panic!("expected report request");
    };
    assert_eq!(to, id(1));
    liar.handle_message(1, id(7), Message::ReportRequest { nonce, count });
    let (_, reply) = sends(&drain(&mut liar))[0].clone();
    verifier.handle_message(2, id(1), reply);
    let evs = events(&drain(&mut verifier));
    let AppEvent::ReportOutcome {
        target,
        verification,
    } = &evs[0]
    else {
        panic!("expected report outcome");
    };
    assert_eq!(*target, id(1));
    assert!(verification.verified.is_empty());
    assert_eq!(verification.rejected, vec![id(66)], "the lie is detected");
}

#[test]
fn history_request_served_honestly_and_overreported() {
    let mut honest = node_with_target(1, 5);
    for round in 1..=4u64 {
        run_monitoring_round(&mut honest, round * MINUTE, round <= 2); // 50%
    }
    honest.handle_message(
        300_000,
        id(7),
        Message::HistoryRequest {
            nonce: Nonce(9),
            target: id(5),
        },
    );
    let (
        _,
        Message::HistoryReply {
            availability,
            samples,
            ..
        },
    ) = sends(&drain(&mut honest))[0].clone()
    else {
        panic!("expected history reply");
    };
    assert_eq!(availability, Some(0.5));
    assert_eq!(samples, 4);

    // The same node, overreporting: claims 1.0.
    honest.set_behavior(Behavior::OverreportAll);
    honest.handle_message(
        300_001,
        id(7),
        Message::HistoryRequest {
            nonce: Nonce(10),
            target: id(5),
        },
    );
    let (
        _,
        Message::HistoryReply {
            availability: over, ..
        },
    ) = sends(&drain(&mut honest))[0].clone()
    else {
        panic!("expected history reply");
    };
    assert_eq!(over, Some(1.0));
}

#[test]
fn history_for_unknown_target_is_none() {
    let mut n = mk_node(1, config(100), TestSelector::none());
    n.handle_message(
        0,
        id(7),
        Message::HistoryRequest {
            nonce: Nonce(1),
            target: id(5),
        },
    );
    let (_, Message::HistoryReply { availability, .. }) = sends(&drain(&mut n))[0].clone() else {
        panic!("expected history reply");
    };
    assert_eq!(availability, None);
}

#[test]
fn request_history_round_trip() {
    let mut monitor = node_with_target(2, 5);
    run_monitoring_round(&mut monitor, MINUTE, true);
    let mut client = mk_node(1, config(100), TestSelector::none());
    client.request_history(0, id(2), id(5));
    let (_, Message::HistoryRequest { nonce, target }) = sends(&drain(&mut client))[0].clone()
    else {
        panic!("expected history request");
    };
    monitor.handle_message(1, id(1), Message::HistoryRequest { nonce, target });
    let (_, reply) = sends(&drain(&mut monitor))[0].clone();
    client.handle_message(2, id(2), reply);
    assert!(events(&drain(&mut client)).iter().any(|e| matches!(
        e,
        AppEvent::HistoryOutcome { monitor, target, availability: Some(a), .. }
            if *monitor == id(2) && *target == id(5) && (*a - 1.0).abs() < 1e-9
    )));
}

#[test]
fn report_timeout_surfaces_event() {
    let mut n = mk_node(1, config(100), TestSelector::none());
    n.request_report(0, id(2), 1);
    let (timer, at) = timers(&drain(&mut n))
        .into_iter()
        .find(|(t, _)| matches!(t, Timer::Expire(_)))
        .unwrap();
    n.handle_timer(at, timer);
    assert!(events(&drain(&mut n)).contains(&AppEvent::RequestTimedOut { peer: id(2) }));
}

// ---------------------------------------------------------------- PR2

#[test]
fn pr2_fires_after_two_quiet_periods() {
    let cfg = Config::builder(100).pr2(true).build().unwrap();
    let mut n = Node::new(id(1), cfg, TestSelector::none(), 3);
    n.start(0, JoinKind::Fresh, None);
    let _ = drain(&mut n);
    n.seed_view(&[id(2), id(3)]);
    // First period (1 min from start): quiet but < 2 periods — no PR2.
    n.handle_timer(MINUTE, Timer::Protocol);
    assert!(!sends(&drain(&mut n))
        .iter()
        .any(|(_, m)| matches!(m, Message::AddMeRequest)));
    // Second period: 2 full periods of silence — PR2 fires to all entries.
    n.handle_timer(2 * MINUTE, Timer::Protocol);
    let addme: Vec<NodeId> = sends(&drain(&mut n))
        .iter()
        .filter_map(|(to, m)| matches!(m, Message::AddMeRequest).then_some(*to))
        .collect();
    assert_eq!(addme.len(), 2, "one AddMe per view entry");
    // Having just fired, it stays quiet the next period…
    n.handle_timer(3 * MINUTE, Timer::Protocol);
    assert!(!sends(&drain(&mut n))
        .iter()
        .any(|(_, m)| matches!(m, Message::AddMeRequest)));
    // …and a monitoring ping resets the quiet clock entirely.
    n.handle_message(
        3 * MINUTE + 1,
        id(5),
        Message::MonitorPing { nonce: Nonce(1) },
    );
    let _ = drain(&mut n);
    n.handle_timer(4 * MINUTE, Timer::Protocol);
    assert!(!sends(&drain(&mut n))
        .iter()
        .any(|(_, m)| matches!(m, Message::AddMeRequest)));
    n.handle_timer(5 * MINUTE + 2, Timer::Protocol);
    assert!(sends(&drain(&mut n))
        .iter()
        .any(|(_, m)| matches!(m, Message::AddMeRequest)));
}

#[test]
fn pr2_disabled_by_default() {
    let mut n = mk_node(1, config(100), TestSelector::none());
    n.start(0, JoinKind::Fresh, None);
    let _ = drain(&mut n);
    n.seed_view(&[id(2)]);
    for p in 1..6 {
        n.handle_timer(p * MINUTE, Timer::Protocol);
        assert!(!sends(&drain(&mut n))
            .iter()
            .any(|(_, m)| matches!(m, Message::AddMeRequest)));
    }
}

#[test]
fn add_me_request_inserts_sender() {
    let mut n = mk_node(1, config(100), TestSelector::none());
    n.handle_message(0, id(42), Message::AddMeRequest);
    let _ = drain(&mut n);
    assert!(n.view().contains(id(42)));
}

// ------------------------------------------------------------- broadcast

#[test]
fn broadcast_mode_floods_presence_and_discovers_directly() {
    let cfg = Config::builder(100)
        .discovery(DiscoveryMode::Broadcast)
        .build()
        .unwrap();
    let selector = TestSelector::with_pairs(&[(id(2), id(1)), (id(1), id(3))]);
    let mut joiner = Node::new(id(1), cfg.clone(), selector.clone(), 1);
    joiner.start(0, JoinKind::Fresh, None);
    let actions = drain(&mut joiner);
    assert!(actions.iter().any(
        |a| matches!(a, Action::Broadcast { msg: Message::Presence { origin } } if *origin == id(1))
    ));

    // Receiver 2 monitors 1: adopts the target and notifies the joiner.
    let mut receiver = Node::new(id(2), cfg.clone(), selector.clone(), 2);
    receiver.handle_message(1, id(1), Message::Presence { origin: id(1) });
    let ra = drain(&mut receiver);
    assert!(receiver.target_set().any(|t| t == id(1)));
    let (to, Message::Notify { monitor, target }) = sends(&ra)[0].clone() else {
        panic!("expected notify to joiner");
    };
    assert_eq!((to, monitor, target), (id(1), id(2), id(1)));
    // The joiner verifies and learns its monitor.
    joiner.handle_message(2, id(2), Message::Notify { monitor, target });
    assert!(events(&drain(&mut joiner)).contains(&AppEvent::MonitorDiscovered { monitor: id(2) }));

    // Receiver 3 is monitored *by* the joiner.
    let mut receiver3 = Node::new(id(3), cfg, selector, 3);
    receiver3.handle_message(1, id(1), Message::Presence { origin: id(1) });
    let ra3 = drain(&mut receiver3);
    assert!(receiver3.pinging_set().any(|m| m == id(1)));
    assert!(sends(&ra3)
        .iter()
        .any(|(to, m)| *to == id(1) && matches!(m, Message::Notify { .. })));
}

// ------------------------------------------------------------ persistence

#[test]
fn persistent_state_round_trips() {
    // Selector knows both relations: 1 monitors 5, and 2 monitors 1.
    let selector = TestSelector::with_pairs(&[(id(1), id(5)), (id(2), id(1))]);
    let mut n = mk_node(1, config(100), selector);
    n.handle_message(
        0,
        id(9),
        Message::Notify {
            monitor: id(1),
            target: id(5),
        },
    );
    let _ = drain(&mut n);
    for round in 1..=3u64 {
        run_monitoring_round(&mut n, round * MINUTE, true);
    }
    n.handle_message(
        0,
        id(9),
        Message::Notify {
            monitor: id(2),
            target: id(1),
        },
    );
    let _ = drain(&mut n);
    let snapshot = n.snapshot_persistent();
    assert_eq!(snapshot.ps, vec![id(2)]);
    assert_eq!(snapshot.targets.len(), 1);

    // A fresh incarnation restores the snapshot: histories survive churn.
    let mut reborn = mk_node(1, config(100), TestSelector::none());
    reborn.restore_persistent(snapshot.clone());
    assert_eq!(reborn.pinging_set_len(), 1);
    assert_eq!(reborn.target_record(id(5)).unwrap().pongs_received, 3);
    // Serializable (the "persistent storage" of §3).
    let json = serde_json::to_string(&snapshot).unwrap();
    let back: PersistentState = serde_json::from_str(&json).unwrap();
    assert_eq!(back, snapshot);
}

#[test]
fn memory_entries_counts_all_three_sets() {
    let selector = TestSelector::with_pairs(&[(id(2), id(1)), (id(1), id(5))]);
    let mut n = mk_node(1, config(100), selector);
    n.seed_view(&[id(3), id(4)]);
    n.handle_message(
        0,
        id(9),
        Message::Notify {
            monitor: id(2),
            target: id(1),
        },
    );
    n.handle_message(
        0,
        id(9),
        Message::Notify {
            monitor: id(1),
            target: id(5),
        },
    );
    let _ = drain(&mut n);
    assert_eq!(n.memory_entries(), 2 + 1 + 1);
}

#[test]
fn stats_accounting_counts_messages_and_bytes() {
    let mut n = mk_node(1, config(100), TestSelector::none());
    n.seed_view(&[id(2)]);
    n.handle_timer(MINUTE, Timer::Protocol);
    let sent = sends(&drain(&mut n));
    assert_eq!(n.stats().messages_sent, sent.len() as u64);
    let expected_bytes: u64 = sent
        .iter()
        .map(|(_, m)| crate::codec::encoded_len(m) as u64)
        .sum();
    assert_eq!(n.stats().bytes_sent, expected_bytes);
}

// ------------------------------------------------- lazy-expiry semantics
//
// The timer-wheel contract on `Timer::Expire` (PR 5): a pong before the
// deadline cancels the expiry, a genuine timeout still fires exactly once,
// and a re-armed nonce never resurrects a stale timer.

/// Drives one protocol period and returns the armed `(ViewPing nonce,
/// deadline)` pair.
fn armed_view_ping(n: &mut Node, now: TimeMs) -> (Nonce, TimeMs) {
    n.handle_timer(now, Timer::Protocol);
    let actions = drain(n);
    let ping_nonce = sends(&actions)
        .iter()
        .find_map(|(_, m)| match m {
            Message::ViewPing { nonce } => Some(*nonce),
            _ => None,
        })
        .expect("protocol period pings a view entry");
    let deadline = timers(&actions)
        .iter()
        .find_map(|(t, at)| (*t == Timer::Expire(ping_nonce)).then_some(*at))
        .expect("the ping arms its expiry");
    (ping_nonce, deadline)
}

#[test]
fn pong_before_deadline_cancels_the_expiry() {
    let mut n = mk_node(1, config(100), TestSelector::none());
    n.seed_view(&[id(2)]);
    let (nonce, deadline) = armed_view_ping(&mut n, MINUTE);
    assert!(
        n.timer_live(Timer::Expire(nonce), deadline),
        "an unanswered ping's expiry is live at its deadline"
    );
    n.handle_message(MINUTE + 1, id(2), Message::ViewPong { nonce });
    let _ = drain(&mut n);
    // The pong killed the timer: drivers may drop it without delivering…
    assert!(!n.timer_live(Timer::Expire(nonce), deadline));
    // …and delivering it anyway is a guaranteed no-op: no false failure.
    n.handle_timer(deadline, Timer::Expire(nonce));
    assert!(!n.has_pending_output(), "a dead expiry must emit nothing");
    assert!(n.view().contains(id(2)), "no false eviction");
    assert_eq!(n.stats().view_evictions, 0);
}

#[test]
fn genuine_timeout_fires_exactly_once() {
    let mut n = mk_node(1, config(100), TestSelector::none());
    n.seed_view(&[id(2)]);
    let (nonce, deadline) = armed_view_ping(&mut n, MINUTE);
    n.handle_timer(deadline, Timer::Expire(nonce));
    let _ = drain(&mut n);
    assert!(!n.view().contains(id(2)), "timeout evicts the silent entry");
    assert_eq!(n.stats().view_evictions, 1);
    // A duplicate firing (a driver replaying the same timer) is dead.
    assert!(!n.timer_live(Timer::Expire(nonce), deadline));
    n.handle_timer(deadline + 1, Timer::Expire(nonce));
    let _ = drain(&mut n);
    assert_eq!(n.stats().view_evictions, 1, "an expiry fires exactly once");
}

#[test]
fn rearmed_nonce_does_not_resurrect_stale_timer() {
    let mut n = mk_node(1, config(100), TestSelector::none());
    n.seed_view(&[id(2)]);
    let (nonce, first_deadline) = armed_view_ping(&mut n, MINUTE);
    // The ping is answered, retiring the nonce…
    n.handle_message(MINUTE + 1, id(2), Message::ViewPong { nonce });
    let _ = drain(&mut n);
    // …and a later request happens to re-draw the same nonce, with a later
    // deadline (forced here; the RNG makes this a 2⁻⁶⁴ event per draw).
    let second_deadline = first_deadline + 30 * 1000;
    n.pending.insert(
        nonce,
        PendingEntry {
            state: Pending::ViewPing { peer: id(2) },
            deadline: second_deadline,
        },
    );
    // The FIRST arming's timer is still in flight and fires now: it must
    // not expire the second request early. Before the deadline stamp this
    // was a false failure — the stale timer removed the fresh entry.
    assert!(!n.timer_live(Timer::Expire(nonce), first_deadline));
    n.handle_timer(first_deadline, Timer::Expire(nonce));
    let _ = drain(&mut n);
    assert!(n.view().contains(id(2)), "stale timer must not evict");
    assert_eq!(n.stats().view_evictions, 0);
    assert!(
        n.pending.contains_key(&nonce),
        "the re-armed request survives its predecessor's timer"
    );
    // The second arming's own firing still works.
    assert!(n.timer_live(Timer::Expire(nonce), second_deadline));
    n.handle_timer(second_deadline, Timer::Expire(nonce));
    let _ = drain(&mut n);
    assert!(!n.view().contains(id(2)), "the real timeout still fires");
}

#[test]
fn periodic_timers_are_always_live() {
    let n = mk_node(1, config(100), TestSelector::none());
    assert!(n.timer_live(Timer::Protocol, 0));
    assert!(n.timer_live(Timer::Monitoring, TimeMs::MAX));
    // An unknown nonce is dead at any time.
    assert!(!n.timer_live(Timer::Expire(Nonce(12345)), TimeMs::MAX));
}

#[test]
fn memoized_and_unmemoized_checks_agree_with_identical_outputs() {
    // Two nodes, same seed and inputs; one has the pair memo disabled.
    // Every drained output and every observable set must stay identical —
    // the node-level differential underlying `tests/equivalence.rs`.
    let cfg = Config::builder(100).build().unwrap();
    let mk = || {
        let selector = Arc::new(crate::HashSelector::from_config(&cfg));
        let mut node = Node::new(id(1), cfg.clone(), selector, 7);
        node.seed_view(&[id(2), id(3), id(4), id(5)]);
        node
    };
    let mut memoized = mk();
    let mut plain = mk();
    plain.set_point_memo_slots(0);
    let fetched: Vec<NodeId> = (2..40).map(id).collect();
    for round in 0..12u64 {
        let now = MINUTE * (round + 1);
        for node in [&mut memoized, &mut plain] {
            node.handle_timer(now, Timer::Protocol);
        }
        let (a, b) = (drain(&mut memoized), drain(&mut plain));
        assert_eq!(a, b, "round {round}: outputs diverged");
        // Feed both the same fetch reply so the cross-check runs.
        for (to, m) in sends(&a) {
            if let Message::ViewFetch { nonce } = m {
                for node in [&mut memoized, &mut plain] {
                    node.handle_message(
                        now + 1,
                        to,
                        Message::ViewFetchReply {
                            nonce,
                            view: fetched.clone(),
                        },
                    );
                }
            }
        }
        let (a, b) = (drain(&mut memoized), drain(&mut plain));
        assert_eq!(a, b, "round {round}: cross-check outputs diverged");
    }
    let (hits, misses) = memoized.point_memo_stats();
    assert!(hits > 0, "repeat pairs must hit the memo");
    assert!(misses > 0);
    assert_eq!(plain.point_memo_stats(), (0, 0));
    assert_eq!(
        memoized.pinging_set().collect::<Vec<_>>(),
        plain.pinging_set().collect::<Vec<_>>()
    );
    assert_eq!(
        memoized.target_set().collect::<Vec<_>>(),
        plain.target_set().collect::<Vec<_>>()
    );
    assert_eq!(memoized.stats(), plain.stats(), "hash_checks must match");
}
