//! Coarse-view maintenance and monitor discovery (Figs. 1 and 2).
//!
//! All effects are queued on the node's internal output queues and drained
//! by the driver through the poll interface.

use super::{AppEvent, Node, Pending};
use crate::message::Message;
use crate::time::TimeMs;
use crate::NodeId;

impl Node {
    /// One protocol period of the coarse-membership protocol (Fig. 2):
    /// liveness-ping one random view entry, fetch the view of another, and
    /// (if enabled) run the PR2 re-advertisement check.
    pub(super) fn protocol_period(&mut self, now: TimeMs) {
        // Behavior-driven corruption: a lying monitor adopts its forged
        // targets without any consistency-condition check. Honest nodes
        // never take this branch.
        if self.behavior.fake_targets().is_some() {
            self.adopt_fake_targets(now);
        }

        // Self-stabilization audit (Avatar framing): PS/TS membership is
        // fully determined by the hash condition, so an honest node can
        // re-derive the legitimacy of every entry locally. Any entry a
        // state corruption planted (or that a healed attack left behind)
        // fails the condition and is purged; on uncorrupted state this
        // removes nothing, draws no randomness, and sends no messages.
        // Dropped entries are not recreated here — they re-heal through
        // ordinary NOTIFY re-discovery, which is what the stabilization
        // bound is derived from. Forging behaviors skip the audit: they
        // keep their forged entries on purpose.
        if !self.behavior.forges_state() {
            self.audit_sets();
        }

        // Eclipse campaign: flood each victim with forged NOTIFYs claiming
        // every coalition member as its monitor. The victim re-verifies
        // (§3.3), so this measures eclipse *resistance* — only members the
        // hash condition genuinely selects ever enter the victim's PS.
        if self.behavior.eclipse_flood().is_some() {
            self.flood_eclipse_notifies();
        }

        // Age out the notified cache: suppressed NOTIFYs become eligible
        // for retransmission every few periods, so a copy lost to the
        // network (loss, partitions) is eventually replaced. See the field
        // docs on `Node::notified_cleared_at`.
        if now.saturating_sub(self.notified_cleared_at) >= 8 * self.config.protocol_period {
            self.notified.clear();
            self.notified_cleared_at = now;
        }

        // 0. Loss recovery (not in the paper, whose network is reliable):
        //    an empty view means this node is invisible and blind — its
        //    original JOIN or view inheritance was lost. Retry through the
        //    join contact.
        if self.view.is_empty() {
            if let Some(contact) = self.contact {
                self.send(
                    contact,
                    Message::Join {
                        origin: self.id,
                        weight: self.config.cvs as u32,
                        hops: 0,
                    },
                );
                let nonce = self.begin_request(now, Pending::InitView { peer: contact });
                self.send(contact, Message::InitViewRequest { nonce });
            }
            return;
        }

        // 0b. Visibility recovery (deviation, see `last_view_probe_rx`):
        //     several silent periods mean no coarse view holds this node
        //     any more — a state only reachable when the network loses
        //     messages, and unrecoverable by the paper's protocol alone.
        //     Re-advertise to the current view entries (as PR2 would) and
        //     back off for another detection window.
        let visibility_basis = self.last_view_probe_rx.unwrap_or(self.started_at);
        if now.saturating_sub(visibility_basis) >= 6 * self.config.protocol_period {
            self.last_view_probe_rx = Some(now);
            self.readvertise();
        }

        // 1. Ping a random coarse-view entry; unresponsive ⇒ removed (via
        //    the Expire timer).
        if let Some(z) = self.view.pick_random(&mut self.rng) {
            let nonce = self.begin_request(now, Pending::ViewPing { peer: z });
            self.send(z, Message::ViewPing { nonce });
        }

        // 2. Fetch the coarse view of another random entry.
        if let Some(w) = self.view.pick_random(&mut self.rng) {
            let nonce = self.begin_request(now, Pending::ViewFetch { peer: w });
            self.send(w, Message::ViewFetch { nonce });
        }

        // 3. PR2 (§5.4): if no monitoring ping has arrived for two protocol
        //    periods, force all view entries to re-add this node.
        if self.config.pr2 {
            let basis = match (self.last_monitor_ping_rx, self.pr2_last_fired) {
                (Some(rx), Some(fired)) => rx.max(fired),
                (Some(rx), None) => rx,
                (None, Some(fired)) => fired,
                (None, None) => self.started_at,
            };
            if now.saturating_sub(basis) >= 2 * self.config.protocol_period {
                self.pr2_last_fired = Some(now);
                self.readvertise();
            }
        }
    }

    /// Asks every current coarse-view entry to re-add this node — shared
    /// by PR2 (§5.4) and visibility recovery.
    fn readvertise(&mut self) {
        let peers: Vec<NodeId> = self.view.iter().collect();
        for peer in peers {
            self.send(peer, Message::AddMeRequest);
        }
    }

    /// Purges every PS/TS entry the consistency condition does not
    /// actually select — the honest node's self-stabilization step. Uses
    /// the non-counting [`Node::condition`] so `hash_checks` (and with it
    /// report byte-identity on clean runs) is unaffected.
    fn audit_sets(&mut self) {
        let monitors: Vec<NodeId> = self.ps.iter().copied().collect();
        for m in monitors {
            if m == self.id || !self.condition(m, self.id) {
                self.ps.remove(&m);
                self.sets_epoch += 1;
            }
        }
        let targets: Vec<NodeId> = self.targets.keys().copied().collect();
        for t in targets {
            if t == self.id || !self.condition(self.id, t) {
                self.targets.remove(&t);
                self.sets_epoch += 1;
            }
        }
    }

    /// [`crate::Behavior::EclipseCoalition`]: once per protocol period,
    /// send every victim a forged `NOTIFY(member, victim)` for each
    /// coalition member, trying to capture the victim's monitor slots.
    fn flood_eclipse_notifies(&mut self) {
        let pairs: Vec<(NodeId, NodeId)> = match self.behavior.eclipse_flood() {
            Some((coalition, victims)) => victims
                .iter()
                .flat_map(|&v| coalition.iter().map(move |&c| (c, v)))
                .filter(|&(c, v)| c != v && v != self.id)
                .collect(),
            None => Vec::new(),
        };
        for (member, victim) in pairs {
            self.stats.notifies_sent += 1;
            self.send(
                victim,
                Message::Notify {
                    monitor: member,
                    target: victim,
                },
            );
        }
    }

    /// Fig. 1: processing of a `JOIN(origin, c)` message.
    pub(super) fn handle_join(&mut self, _now: TimeMs, origin: NodeId, weight: u32, hops: u32) {
        if weight == 0 || hops >= self.config.join_hop_limit {
            return;
        }
        // Eclipse coalitions starve their victims: a victim's JOIN is
        // neither absorbed nor forwarded.
        if self.behavior.suppresses_join(origin) {
            return;
        }
        let mut c = weight;
        if origin != self.id && !self.view.contains(origin) {
            self.view.insert_or_replace(origin, &mut self.rng);
            c -= 1;
            self.emit(AppEvent::JoinAbsorbed { origin });
        }
        if c == 0 {
            return;
        }
        // Split the remaining weight into ⌊c/2⌋ and ⌈c/2⌉ and forward each
        // to a random coarse-view entry (never back to the origin itself).
        let halves = [c / 2, c - c / 2];
        for half in halves {
            if half == 0 {
                continue;
            }
            if let Some(next) = self.view.pick_random_excluding(&mut self.rng, origin) {
                self.stats.joins_forwarded += 1;
                self.send(
                    next,
                    Message::Join {
                        origin,
                        weight: half,
                        hops: hops + 1,
                    },
                );
            }
        }
    }

    /// Fig. 2 core: on receiving `CV(w)`, cross-check the consistency
    /// condition over `({CV(x)∪{x,w}} × {CV(w)∪{x,w}})` in both orders,
    /// `NOTIFY` both endpoints of each match, then shuffle the view.
    pub(super) fn process_fetched_view(&mut self, now: TimeMs, w: NodeId, fetched: &[NodeId]) {
        // A = CV(x) ∪ {x, w}
        let mut side_a: Vec<NodeId> = self.view.iter().collect();
        if !side_a.contains(&self.id) {
            side_a.push(self.id);
        }
        if !side_a.contains(&w) {
            side_a.push(w);
        }
        // B = CV(w) ∪ {x, w}
        let mut side_b: Vec<NodeId> = Vec::with_capacity(fetched.len() + 2);
        for &v in fetched {
            if !side_b.contains(&v) {
                side_b.push(v);
            }
        }
        if !side_b.contains(&self.id) {
            side_b.push(self.id);
        }
        if !side_b.contains(&w) {
            side_b.push(w);
        }

        for &u in &side_a {
            for &v in &side_b {
                if u == v {
                    continue;
                }
                for (monitor, target) in [(u, v), (v, u)] {
                    // Eclipse members drop honest NOTIFYs that would help
                    // a victim (re)discover non-coalition monitors.
                    if self.behavior.suppresses_notify(monitor, target) {
                        continue;
                    }
                    if self.check(monitor, target) && self.mark_notified(monitor, target) {
                        self.notify_pair(now, monitor, target);
                    }
                }
            }
        }

        // Shuffle: CV(x) := cvs random entries of CV(x) ∪ CV(w) ∪ {w}.
        self.view.shuffle_merge(w, fetched, &mut self.rng);
    }

    /// [`crate::Behavior::FakeMonitor`]: force the forged targets into
    /// `TS` as if a NOTIFY had verified, emitting the same discovery
    /// events a real adoption would.
    fn adopt_fake_targets(&mut self, now: TimeMs) {
        let fakes: Vec<NodeId> = self
            .behavior
            .fake_targets()
            .unwrap_or_default()
            .iter()
            .copied()
            .filter(|&t| t != self.id && !self.targets.contains_key(&t))
            .collect();
        for target in fakes {
            self.sets_epoch += 1;
            self.targets.insert(
                target,
                super::TargetRecord::new(now, self.history_template.clone()),
            );
            self.emit(AppEvent::TargetDiscovered { target });
        }
    }

    /// Records that `(monitor, target)` has been notified; returns whether
    /// it is new. The cache is cleared when full, so retransmission is
    /// merely delayed, never suppressed forever.
    fn mark_notified(&mut self, monitor: NodeId, target: NodeId) -> bool {
        if self.notified.len() >= self.notified_cap {
            self.notified.clear();
        }
        self.notified.insert((monitor, target))
    }

    /// Sends `NOTIFY(monitor, target)` to both endpoints, handling the case
    /// where one endpoint is this node itself.
    fn notify_pair(&mut self, now: TimeMs, monitor: NodeId, target: NodeId) {
        for endpoint in [monitor, target] {
            if endpoint == self.id {
                self.handle_notify(now, monitor, target);
            } else {
                self.stats.notifies_sent += 1;
                self.send(endpoint, Message::Notify { monitor, target });
            }
        }
    }

    /// §3.3: `NOTIFY(monitor, target)` reception — re-verify the condition
    /// and update `PS` / `TS`.
    pub(super) fn handle_notify(&mut self, now: TimeMs, monitor: NodeId, target: NodeId) {
        if monitor == target {
            return;
        }
        if target == self.id && monitor != self.id && !self.ps.contains(&monitor) {
            // Someone claims `monitor` should monitor me: verify, then admit.
            if self.check(monitor, target) {
                self.sets_epoch += 1;
                self.ps.insert(monitor);
                self.emit(AppEvent::MonitorDiscovered { monitor });
            }
        }
        if monitor == self.id && target != self.id && !self.targets.contains_key(&target) {
            // Someone claims I should monitor `target`: verify, then adopt.
            if self.check(monitor, target) {
                self.sets_epoch += 1;
                self.targets.insert(
                    target,
                    super::TargetRecord::new(now, self.history_template.clone()),
                );
                self.emit(AppEvent::TargetDiscovered { target });
            }
        }
    }

    /// Broadcast-baseline presence handling (Table 1): the receiver checks
    /// both directions of the condition against the joiner directly.
    pub(super) fn handle_presence(&mut self, now: TimeMs, origin: NodeId) {
        if origin == self.id {
            return;
        }
        // Do I monitor the joiner?
        if !self.targets.contains_key(&origin) && self.check(self.id, origin) {
            self.sets_epoch += 1;
            self.targets.insert(
                origin,
                super::TargetRecord::new(now, self.history_template.clone()),
            );
            self.emit(AppEvent::TargetDiscovered { target: origin });
            self.stats.notifies_sent += 1;
            self.send(
                origin,
                Message::Notify {
                    monitor: self.id,
                    target: origin,
                },
            );
        }
        // Does the joiner monitor me?
        if !self.ps.contains(&origin) && self.check(origin, self.id) {
            self.sets_epoch += 1;
            self.ps.insert(origin);
            self.emit(AppEvent::MonitorDiscovered { monitor: origin });
            self.stats.notifies_sent += 1;
            self.send(
                origin,
                Message::Notify {
                    monitor: origin,
                    target: self.id,
                },
            );
        }
    }
}
