//! Per-node protocol counters.
//!
//! The evaluation metrics of §5 — bandwidth (Fig. 19), computational
//! overhead (Figs. 7, 8, 12), useless pings (Fig. 18) — are all derived
//! from these counters. Drivers sample them periodically and difference
//! consecutive snapshots.

use serde::{Deserialize, Serialize};

/// Monotonic counters maintained by a [`Node`](crate::Node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct NodeStats {
    /// Messages emitted (all types).
    pub messages_sent: u64,
    /// Bytes emitted (wire-codec encoded size of every sent message).
    pub bytes_sent: u64,
    /// Messages received and processed.
    pub messages_received: u64,
    /// Bytes received (wire-codec encoded size).
    pub bytes_received: u64,
    /// Consistency-condition evaluations (the "computations" of Fig. 7:
    /// one hash evaluation each).
    pub hash_checks: u64,
    /// `NOTIFY` messages emitted after positive checks.
    pub notifies_sent: u64,
    /// JOIN messages forwarded on behalf of other nodes.
    pub joins_forwarded: u64,
    /// Monitoring pings sent to targets.
    pub monitor_pings_sent: u64,
    /// Monitoring pings suppressed by forgetful pinging.
    pub monitor_pings_suppressed: u64,
    /// Monitoring pongs received from targets.
    pub monitor_pongs_received: u64,
    /// Monitoring pings received (kept for the PR2 trigger and load stats).
    pub monitor_pings_received: u64,
    /// Coarse-view entries removed after ping/fetch timeouts.
    pub view_evictions: u64,
}

impl NodeStats {
    /// Field-wise difference `self - earlier` (both snapshots of the same
    /// node; counters are monotonic so saturating arithmetic suffices).
    #[must_use]
    pub fn delta(&self, earlier: &NodeStats) -> NodeStats {
        NodeStats {
            messages_sent: self.messages_sent.saturating_sub(earlier.messages_sent),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            messages_received: self
                .messages_received
                .saturating_sub(earlier.messages_received),
            bytes_received: self.bytes_received.saturating_sub(earlier.bytes_received),
            hash_checks: self.hash_checks.saturating_sub(earlier.hash_checks),
            notifies_sent: self.notifies_sent.saturating_sub(earlier.notifies_sent),
            joins_forwarded: self.joins_forwarded.saturating_sub(earlier.joins_forwarded),
            monitor_pings_sent: self
                .monitor_pings_sent
                .saturating_sub(earlier.monitor_pings_sent),
            monitor_pings_suppressed: self
                .monitor_pings_suppressed
                .saturating_sub(earlier.monitor_pings_suppressed),
            monitor_pongs_received: self
                .monitor_pongs_received
                .saturating_sub(earlier.monitor_pongs_received),
            monitor_pings_received: self
                .monitor_pings_received
                .saturating_sub(earlier.monitor_pings_received),
            view_evictions: self.view_evictions.saturating_sub(earlier.view_evictions),
        }
    }

    /// Accumulates `other` into `self` (for system-wide aggregation).
    pub fn merge(&mut self, other: &NodeStats) {
        self.messages_sent += other.messages_sent;
        self.bytes_sent += other.bytes_sent;
        self.messages_received += other.messages_received;
        self.bytes_received += other.bytes_received;
        self.hash_checks += other.hash_checks;
        self.notifies_sent += other.notifies_sent;
        self.joins_forwarded += other.joins_forwarded;
        self.monitor_pings_sent += other.monitor_pings_sent;
        self.monitor_pings_suppressed += other.monitor_pings_suppressed;
        self.monitor_pongs_received += other.monitor_pongs_received;
        self.monitor_pings_received += other.monitor_pings_received;
        self.view_evictions += other.view_evictions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_fieldwise() {
        let earlier = NodeStats {
            messages_sent: 10,
            bytes_sent: 100,
            ..Default::default()
        };
        let later = NodeStats {
            messages_sent: 15,
            bytes_sent: 160,
            ..Default::default()
        };
        let d = later.delta(&earlier);
        assert_eq!(d.messages_sent, 5);
        assert_eq!(d.bytes_sent, 60);
        assert_eq!(d.hash_checks, 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut total = NodeStats::default();
        total.merge(&NodeStats {
            hash_checks: 7,
            ..Default::default()
        });
        total.merge(&NodeStats {
            hash_checks: 5,
            notifies_sent: 1,
            ..Default::default()
        });
        assert_eq!(total.hash_checks, 12);
        assert_eq!(total.notifies_sent, 1);
    }
}
