//! Property-based tests for trace generation and serialization.

use avmon::HOUR;
use avmon_churn::{
    from_json, from_text, overnet_like, planetlab_like, stat, synthetic, to_json, to_text,
    ChurnEventKind, SynthParams,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated synthetic trace validates (alternation, horizon)
    /// and keeps the alive population within a sane band.
    #[test]
    fn synth_traces_are_well_formed(
        n in 20usize..300,
        churn in 0.0f64..0.5,
        bd in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let params = SynthParams {
            n,
            churn_per_hour: churn,
            birth_death_per_day: bd,
            warmup: HOUR,
            duration: HOUR,
            control_fraction: 0.1,
            seed,
        };
        let trace = synthetic(params); // Trace::new panics on inconsistency
        prop_assert!(trace.alive_at(trace.horizon - 1) >= n / 4);
        prop_assert!(trace.events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    /// JSON and text round-trips are lossless for every generator.
    #[test]
    fn serialization_round_trips(seed in any::<u64>(), pick in 0u8..5) {
        let trace = match pick {
            0 => stat(50, HOUR, 0.1, seed),
            1 => synthetic(SynthParams::synth(50).duration(HOUR).seed(seed)),
            2 => synthetic(SynthParams::synth_bd(50).duration(HOUR).seed(seed)),
            3 => planetlab_like(HOUR, seed),
            _ => overnet_like(HOUR, seed),
        };
        prop_assert_eq!(&from_json(&to_json(&trace).unwrap()).unwrap(), &trace);
        prop_assert_eq!(&from_text(&to_text(&trace)).unwrap(), &trace);
    }

    /// Per-node availability is always a valid fraction, and the up
    /// intervals tile without overlap.
    #[test]
    fn availability_is_a_fraction(seed in any::<u64>()) {
        let trace = synthetic(SynthParams::synth_bd(60).duration(2 * HOUR).seed(seed));
        for node in trace.identities().into_iter().take(20) {
            let a = trace.availability_of(node, 0, trace.horizon);
            prop_assert!((0.0..=1.0).contains(&a), "availability {}", a);
        }
        for (_, ups) in trace.up_intervals().iter() {
            for w in ups.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "overlapping up intervals");
            }
        }
    }

    /// Births strictly precede every other event of the same identity.
    #[test]
    fn births_come_first(seed in any::<u64>()) {
        let trace = synthetic(SynthParams::synth_bd(40).duration(HOUR).seed(seed));
        let mut born = std::collections::BTreeSet::new();
        for e in &trace.events {
            match e.kind {
                ChurnEventKind::Birth => {
                    prop_assert!(born.insert(e.node), "double birth");
                }
                _ => prop_assert!(born.contains(&e.node), "event before birth"),
            }
        }
    }
}
