//! Churn traces: timestamped lifecycle events of node identities.
//!
//! The paper's simulator is *trace-driven* (§5): every availability model —
//! synthetic or measured — is reduced to a sequence of per-node up/down
//! transitions that the simulator replays. [`Trace`] is that sequence, plus
//! the metadata the experiments need (stable size, control group, horizon).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use avmon::{DurMs, NodeId, TimeMs};
use serde::{Deserialize, Serialize};

/// One lifecycle transition of one node identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnEventKind {
    /// First ever entry into the system (a *birth*).
    Birth,
    /// Re-entry after a leave (a *rejoin*).
    Join,
    /// Departure that may be followed by a rejoin.
    Leave,
    /// Final departure — silent, exactly like a leave on the wire, but the
    /// identity never returns (used by accounting only).
    Death,
}

impl ChurnEventKind {
    /// Whether the node is up after this event.
    #[must_use]
    pub fn is_up_transition(self) -> bool {
        matches!(self, ChurnEventKind::Birth | ChurnEventKind::Join)
    }
}

/// A timestamped lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// When the transition happens.
    pub at: TimeMs,
    /// The node identity.
    pub node: NodeId,
    /// What happens.
    pub kind: ChurnEventKind,
}

/// A complete availability trace.
///
/// # Example
///
/// ```
/// use avmon_churn::{stat, TraceStats};
///
/// let trace = stat(100, 2 * avmon::HOUR, 0.1, 42);
/// assert_eq!(trace.stable_size, 100);
/// let stats = trace.stats();
/// assert_eq!(stats.births, 110); // 100 initial + 10 control-group joiners
/// ```
#[derive(Debug)]
pub struct Trace {
    /// Human-readable model name (`STAT`, `SYNTH`, `OV`, …).
    pub name: String,
    /// The stable system size `N` the protocol should be configured with.
    pub stable_size: usize,
    /// End of the covered time range (all events are `< horizon`).
    pub horizon: TimeMs,
    /// When the measurement phase begins (after warm-up).
    pub measure_from: TimeMs,
    /// The nodes whose discovery time the experiment measures.
    pub control_group: Vec<NodeId>,
    /// Lifecycle events, sorted by time.
    pub events: Vec<ChurnEvent>,
    /// Lazily built per-node up-interval index shared by
    /// [`Trace::up_intervals`], [`Trace::availability_of`] and
    /// [`Trace::stats`]. Guarded by an `(events.len(), horizon)` stamp:
    /// growing the trace (via [`Trace::append`] or a direct push into the
    /// public `events` field) invalidates the cache on the next query, so
    /// repeated per-node availability lookups cost one `O(E)` build total
    /// instead of one per call. Interior mutability keeps the query methods
    /// `&self`; the mutex is uncontended in practice (queries come from the
    /// sequential report-assembly path).
    index: Mutex<Option<UpIndex>>,
}

/// The cached up-interval index plus the trace shape it was built from.
#[derive(Debug, Clone)]
struct UpIndex {
    /// `(events.len(), horizon)` at build time.
    stamp: (usize, TimeMs),
    intervals: Arc<BTreeMap<NodeId, Vec<(TimeMs, TimeMs)>>>,
}

// Hand-written (rather than derived) because the cache field must not
// participate: the vendored serde derive has no `#[serde(skip)]`, and
// `Mutex` is neither `Clone` nor comparable. Equality and the wire format
// cover exactly the six public fields, matching what the derives produced
// before the cache existed.
impl Clone for Trace {
    fn clone(&self) -> Self {
        Trace {
            name: self.name.clone(),
            stable_size: self.stable_size,
            horizon: self.horizon,
            measure_from: self.measure_from,
            control_group: self.control_group.clone(),
            events: self.events.clone(),
            // Carry a built index along: it is a cheap `Arc` clone and
            // stays valid because the events it stamps are cloned with it.
            index: Mutex::new(self.index.lock().map_or(None, |g| (*g).clone())),
        }
    }
}

impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.stable_size == other.stable_size
            && self.horizon == other.horizon
            && self.measure_from == other.measure_from
            && self.control_group == other.control_group
            && self.events == other.events
    }
}

impl Serialize for Trace {
    fn to_value(&self) -> serde::Value {
        serde::Value::record(vec![
            ("name", self.name.to_value()),
            ("stable_size", self.stable_size.to_value()),
            ("horizon", self.horizon.to_value()),
            ("measure_from", self.measure_from.to_value()),
            ("control_group", self.control_group.to_value()),
            ("events", self.events.to_value()),
        ])
    }
}

impl Deserialize for Trace {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| serde::DeError(format!("missing field {name} of Trace")))
        };
        Ok(Trace {
            name: Deserialize::from_value(field("name")?)?,
            stable_size: Deserialize::from_value(field("stable_size")?)?,
            horizon: Deserialize::from_value(field("horizon")?)?,
            measure_from: Deserialize::from_value(field("measure_from")?)?,
            control_group: Deserialize::from_value(field("control_group")?)?,
            events: Deserialize::from_value(field("events")?)?,
            index: Mutex::new(None),
        })
    }
}

impl Trace {
    /// Creates a trace, sorting events by time and validating per-node
    /// alternation.
    ///
    /// # Panics
    ///
    /// Panics if the event sequence is inconsistent (double join, event
    /// after death, join without birth) — traces are generated or loaded,
    /// and inconsistency is a construction bug, not a runtime condition.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        stable_size: usize,
        horizon: TimeMs,
        measure_from: TimeMs,
        control_group: Vec<NodeId>,
        mut events: Vec<ChurnEvent>,
    ) -> Self {
        events.sort_by_key(|e| (e.at, e.node));
        let trace = Trace {
            name: name.into(),
            stable_size,
            horizon,
            measure_from,
            control_group,
            events,
            index: Mutex::new(None),
        };
        trace.validate();
        trace
    }

    /// Appends one more event to the trace, keeping the sort order and
    /// invalidating the cached up-interval index. Per-node alternation
    /// stays the caller's contract (exactly as with a direct push into the
    /// public `events` field); ordering and the horizon bound are checked.
    ///
    /// # Panics
    ///
    /// Panics if `event` is at or beyond the horizon, or sorts before the
    /// current last event.
    pub fn append(&mut self, event: ChurnEvent) {
        assert!(
            event.at < self.horizon,
            "event at {} beyond horizon {}",
            event.at,
            self.horizon
        );
        if let Some(last) = self.events.last() {
            assert!(
                (last.at, last.node) <= (event.at, event.node),
                "append out of order: {:?} after {:?}",
                event,
                last
            );
        }
        self.events.push(event);
        *self
            .index
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    }

    fn validate(&self) {
        #[derive(PartialEq, Clone, Copy)]
        enum S {
            Unborn,
            Up,
            Down,
            Dead,
        }
        let mut state: BTreeMap<NodeId, S> = BTreeMap::new();
        for e in &self.events {
            assert!(
                e.at < self.horizon,
                "event at {} beyond horizon {}",
                e.at,
                self.horizon
            );
            let s = state.entry(e.node).or_insert(S::Unborn);
            *s = match (*s, e.kind) {
                (S::Unborn, ChurnEventKind::Birth) => S::Up,
                (S::Down, ChurnEventKind::Join) => S::Up,
                (S::Up, ChurnEventKind::Leave) => S::Down,
                (S::Up, ChurnEventKind::Death) => S::Dead,
                (state, kind) => panic!(
                    "inconsistent trace: node {} got {:?} in state {}",
                    e.node,
                    kind,
                    match state {
                        S::Unborn => "unborn",
                        S::Up => "up",
                        S::Down => "down",
                        S::Dead => "dead",
                    }
                ),
            };
        }
    }

    /// All identities that ever appear.
    #[must_use]
    pub fn identities(&self) -> BTreeSet<NodeId> {
        self.events.iter().map(|e| e.node).collect()
    }

    /// Per-node up-intervals `[start, end)` clipped to the horizon —
    /// served from the cached index (built on first call, shared via
    /// `Arc`, invalidated when the trace grows).
    #[must_use]
    pub fn up_intervals(&self) -> Arc<BTreeMap<NodeId, Vec<(TimeMs, TimeMs)>>> {
        let stamp = (self.events.len(), self.horizon);
        let mut slot = self
            .index
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(cached) = slot.as_ref() {
            if cached.stamp == stamp {
                return Arc::clone(&cached.intervals);
            }
        }
        let intervals = Arc::new(self.up_intervals_uncached());
        *slot = Some(UpIndex {
            stamp,
            intervals: Arc::clone(&intervals),
        });
        intervals
    }

    /// Per-node up-intervals rebuilt from scratch in one `O(E)` pass — the
    /// reference path the cached [`Trace::up_intervals`] must agree with
    /// (a regression test holds them identical).
    #[must_use]
    pub fn up_intervals_uncached(&self) -> BTreeMap<NodeId, Vec<(TimeMs, TimeMs)>> {
        let mut open: BTreeMap<NodeId, TimeMs> = BTreeMap::new();
        let mut out: BTreeMap<NodeId, Vec<(TimeMs, TimeMs)>> = BTreeMap::new();
        for e in &self.events {
            match e.kind {
                ChurnEventKind::Birth | ChurnEventKind::Join => {
                    open.insert(e.node, e.at);
                }
                ChurnEventKind::Leave | ChurnEventKind::Death => {
                    if let Some(start) = open.remove(&e.node) {
                        out.entry(e.node).or_default().push((start, e.at));
                    }
                }
            }
        }
        for (node, start) in open {
            out.entry(node).or_default().push((start, self.horizon));
        }
        out
    }

    /// The number of alive nodes at `t`.
    #[must_use]
    pub fn alive_at(&self, t: TimeMs) -> usize {
        let mut alive = 0usize;
        for e in &self.events {
            if e.at > t {
                break;
            }
            match e.kind {
                ChurnEventKind::Birth | ChurnEventKind::Join => alive += 1,
                ChurnEventKind::Leave | ChurnEventKind::Death => alive -= 1,
            }
        }
        alive
    }

    /// The fraction of `[from, to)` during which `node` was up.
    ///
    /// Served from the cached up-interval index: the first query after a
    /// trace change pays one `O(E)` build, every following query is an
    /// `O(log N)` tree lookup plus the node's own intervals — the old code
    /// rebuilt the whole index on *every* call, which made per-node
    /// availability sweeps `O(N·E)`.
    #[must_use]
    pub fn availability_of(&self, node: NodeId, from: TimeMs, to: TimeMs) -> f64 {
        assert!(to > from, "empty window");
        let intervals = self.up_intervals();
        let Some(ups) = intervals.get(&node) else {
            return 0.0;
        };
        let mut up: DurMs = 0;
        for &(s, e) in ups {
            let s = s.max(from);
            let e = e.min(to);
            if e > s {
                up += e - s;
            }
        }
        up as f64 / (to - from) as f64
    }

    /// Aggregate statistics (used by tests and EXPERIMENTS.md).
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        let mut births = 0usize;
        let mut deaths = 0usize;
        let mut joins = 0usize;
        let mut leaves = 0usize;
        for e in &self.events {
            match e.kind {
                ChurnEventKind::Birth => births += 1,
                ChurnEventKind::Death => deaths += 1,
                ChurnEventKind::Join => joins += 1,
                ChurnEventKind::Leave => leaves += 1,
            }
        }
        // Mean availability over identities, measured on the whole horizon.
        let intervals = self.up_intervals();
        let mut mean_availability = 0.0;
        if !intervals.is_empty() {
            for ups in intervals.values() {
                let up: DurMs = ups.iter().map(|&(s, e)| e - s).sum();
                mean_availability += up as f64 / self.horizon as f64;
            }
            mean_availability /= intervals.len() as f64;
        }
        // Churn rate: leave events per alive-node-hour after warm-up.
        let hours = (self.horizon.saturating_sub(self.measure_from)) as f64 / 3_600_000.0;
        let post_warmup_leaves = self
            .events
            .iter()
            .filter(|e| e.at >= self.measure_from && e.kind == ChurnEventKind::Leave)
            .count();
        let churn_per_hour = if hours > 0.0 && self.stable_size > 0 {
            post_warmup_leaves as f64 / hours / self.stable_size as f64
        } else {
            0.0
        };
        TraceStats {
            identities: intervals.len(),
            births,
            deaths,
            joins,
            leaves,
            mean_availability,
            churn_per_hour,
        }
    }
}

/// Aggregate trace statistics — see [`Trace::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Distinct identities appearing in the trace.
    pub identities: usize,
    /// Birth events.
    pub births: usize,
    /// Death events.
    pub deaths: usize,
    /// Rejoin events.
    pub joins: usize,
    /// Leave events.
    pub leaves: usize,
    /// Mean per-identity availability over the horizon.
    pub mean_availability: f64,
    /// Leave events per alive-node-hour after warm-up (0.2 ≈ "20% per hour").
    pub churn_per_hour: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use avmon::HOUR;

    fn id(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    fn ev(at: TimeMs, i: u32, kind: ChurnEventKind) -> ChurnEvent {
        ChurnEvent {
            at,
            node: id(i),
            kind,
        }
    }

    #[test]
    fn up_intervals_and_availability() {
        let t = Trace::new(
            "test",
            2,
            10 * HOUR,
            0,
            vec![],
            vec![
                ev(0, 1, ChurnEventKind::Birth),
                ev(2 * HOUR, 1, ChurnEventKind::Leave),
                ev(4 * HOUR, 1, ChurnEventKind::Join),
                ev(6 * HOUR, 1, ChurnEventKind::Death),
                ev(HOUR, 2, ChurnEventKind::Birth),
            ],
        );
        let intervals = t.up_intervals();
        assert_eq!(intervals[&id(1)], vec![(0, 2 * HOUR), (4 * HOUR, 6 * HOUR)]);
        assert_eq!(intervals[&id(2)], vec![(HOUR, 10 * HOUR)]);
        // Node 1 up 4 of 10 hours.
        assert!((t.availability_of(id(1), 0, 10 * HOUR) - 0.4).abs() < 1e-9);
        // Unknown nodes have zero availability.
        assert_eq!(t.availability_of(id(9), 0, HOUR), 0.0);
        assert_eq!(t.alive_at(HOUR + 1), 2);
        assert_eq!(t.alive_at(3 * HOUR), 1);
        assert_eq!(t.alive_at(7 * HOUR), 1);
    }

    #[test]
    fn stats_count_event_kinds() {
        let t = Trace::new(
            "test",
            1,
            4 * HOUR,
            0,
            vec![],
            vec![
                ev(0, 1, ChurnEventKind::Birth),
                ev(HOUR, 1, ChurnEventKind::Leave),
                ev(2 * HOUR, 1, ChurnEventKind::Join),
                ev(3 * HOUR, 1, ChurnEventKind::Death),
            ],
        );
        let s = t.stats();
        assert_eq!((s.births, s.leaves, s.joins, s.deaths), (1, 1, 1, 1));
        assert_eq!(s.identities, 1);
        assert!((s.mean_availability - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "inconsistent trace")]
    fn double_birth_rejected() {
        let _ = Trace::new(
            "bad",
            1,
            HOUR,
            0,
            vec![],
            vec![
                ev(0, 1, ChurnEventKind::Birth),
                ev(1, 1, ChurnEventKind::Birth),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "inconsistent trace")]
    fn join_without_birth_rejected() {
        let _ = Trace::new(
            "bad",
            1,
            HOUR,
            0,
            vec![],
            vec![ev(0, 1, ChurnEventKind::Join)],
        );
    }

    #[test]
    #[should_panic(expected = "inconsistent trace")]
    fn event_after_death_rejected() {
        let _ = Trace::new(
            "bad",
            1,
            HOUR,
            0,
            vec![],
            vec![
                ev(0, 1, ChurnEventKind::Birth),
                ev(1, 1, ChurnEventKind::Death),
                ev(2, 1, ChurnEventKind::Join),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "beyond horizon")]
    fn event_beyond_horizon_rejected() {
        let _ = Trace::new(
            "bad",
            1,
            HOUR,
            0,
            vec![],
            vec![ev(2 * HOUR, 1, ChurnEventKind::Birth)],
        );
    }

    #[test]
    fn events_are_sorted_on_construction() {
        let t = Trace::new(
            "test",
            2,
            HOUR,
            0,
            vec![],
            vec![
                ev(30, 2, ChurnEventKind::Birth),
                ev(10, 1, ChurnEventKind::Birth),
            ],
        );
        assert!(t.events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    /// The cached up-interval index must agree with the naive rebuild on
    /// every node and every window — and keep agreeing after the trace
    /// grows through [`Trace::append`] (the invalidation path).
    #[test]
    fn cached_index_matches_naive_path() {
        let mut t = Trace::new(
            "test",
            3,
            10 * HOUR,
            0,
            vec![],
            vec![
                ev(0, 1, ChurnEventKind::Birth),
                ev(2 * HOUR, 1, ChurnEventKind::Leave),
                ev(4 * HOUR, 1, ChurnEventKind::Join),
                ev(HOUR, 2, ChurnEventKind::Birth),
                ev(3 * HOUR, 2, ChurnEventKind::Death),
                ev(5 * HOUR, 3, ChurnEventKind::Birth),
            ],
        );
        assert_eq!(*t.up_intervals(), t.up_intervals_uncached());
        // Repeated queries reuse the same build (Arc identity).
        assert!(Arc::ptr_eq(&t.up_intervals(), &t.up_intervals()));
        for node in [id(1), id(2), id(3), id(9)] {
            for (from, to) in [(0, 10 * HOUR), (HOUR, 2 * HOUR), (3 * HOUR, 7 * HOUR)] {
                let naive = {
                    let intervals = t.up_intervals_uncached();
                    let up: DurMs = intervals.get(&node).map_or(0, |ups| {
                        ups.iter()
                            .map(|&(s, e)| e.min(to).saturating_sub(s.max(from)))
                            .sum()
                    });
                    up as f64 / (to - from) as f64
                };
                assert!(
                    (t.availability_of(node, from, to) - naive).abs() < 1e-12,
                    "cached availability diverged for {node} on [{from}, {to})"
                );
            }
        }
        // Growing the trace invalidates the cache...
        let before = t.up_intervals();
        t.append(ev(6 * HOUR, 1, ChurnEventKind::Leave));
        let after = t.up_intervals();
        assert!(!Arc::ptr_eq(&before, &after));
        // ...and the fresh index again matches the naive path.
        assert_eq!(*after, t.up_intervals_uncached());
        assert_eq!(after[&id(1)], vec![(0, 2 * HOUR), (4 * HOUR, 6 * HOUR)]);
    }

    /// Out-of-order and beyond-horizon appends are rejected.
    #[test]
    #[should_panic(expected = "append out of order")]
    fn append_rejects_out_of_order() {
        let mut t = Trace::new(
            "test",
            1,
            HOUR,
            0,
            vec![id(1)],
            vec![ev(30, 1, ChurnEventKind::Birth)],
        );
        t.append(ev(10, 2, ChurnEventKind::Birth));
    }

    /// A clone equals its source and serialization round-trips without the
    /// cache leaking into the wire format.
    #[test]
    fn clone_equality_and_serde_ignore_the_cache() {
        let t = Trace::new(
            "test",
            2,
            HOUR,
            0,
            vec![id(1)],
            vec![
                ev(0, 1, ChurnEventKind::Birth),
                ev(10, 2, ChurnEventKind::Birth),
            ],
        );
        // Populate the cache on one side only: equality must not care.
        let _ = t.up_intervals();
        let cloned = t.clone();
        assert_eq!(t, cloned);
        let json = serde_json::to_string(&t).expect("traces serialize");
        assert!(
            !json.contains("index"),
            "cache leaked into the wire: {json}"
        );
        let back: Trace = serde_json::from_str(&json).expect("traces deserialize");
        assert_eq!(t, back);
    }

    #[test]
    fn up_transition_classification() {
        assert!(ChurnEventKind::Birth.is_up_transition());
        assert!(ChurnEventKind::Join.is_up_transition());
        assert!(!ChurnEventKind::Leave.is_up_transition());
        assert!(!ChurnEventKind::Death.is_up_transition());
    }
}
