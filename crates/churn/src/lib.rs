//! # avmon-churn — availability models and traces for AVMON
//!
//! The paper evaluates AVMON under five availability models (§5):
//! three synthetic — **STAT** (static), **SYNTH** (Poisson join/leave at
//! 20%/hour), **SYNTH-BD** (plus births/deaths at 20%/day, with the
//! high-churn **SYNTH-BD2** variant at 40%/day) — and two measured,
//! **PL** (PlanetLab all-pairs pings) and **OV** (Overnet p2p churn).
//!
//! This crate generates all five as [`Trace`] values: sorted, validated
//! sequences of per-node birth/join/leave/death events that the
//! `avmon-sim` discrete-event simulator replays. The measured traces are
//! synthesized to the paper's published aggregate statistics (see
//! DESIGN.md §3 for the substitution argument); real traces can be
//! imported through the text format in [`io`].
//!
//! ```
//! use avmon_churn::{synthetic, SynthParams};
//!
//! let trace = synthetic(SynthParams::synth_bd(500));
//! let stats = trace.stats();
//! assert!(stats.births > 500); // births occurred beyond the initial 500
//! ```

pub mod event;
pub mod io;
pub mod synth;
pub mod traces;

pub use event::{ChurnEvent, ChurnEventKind, Trace, TraceStats};
pub use io::{from_json, from_text, load_json, save_json, to_json, to_text, TraceIoError};
pub use synth::{stat, synthetic, SynthParams};
pub use traces::{overnet_like, planetlab_like, OVERNET_N, OVERNET_SLOT, PLANETLAB_N};
