//! Synthetic substitutes for the paper's measured traces.
//!
//! The paper injects two real-world trace sets: PlanetLab all-pairs-ping
//! host availability (`PL`, N = 239, per-second resolution, from [7]) and
//! Overnet p2p churn (`OV`, stable size 550, measured every 20 minutes,
//! ~20%/hour churn, 1319 identities born over two days, from [2]). Neither
//! artifact is redistributable here, so these generators synthesize traces
//! matched to the published aggregate statistics that the experiments
//! depend on — stable size, churn rate, measurement granularity, birth
//! volume, and availability level. See DESIGN.md §3 for the substitution
//! rationale.

use avmon::{DurMs, NodeId, TimeMs, HOUR, MINUTE, SECOND};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::event::{ChurnEvent, ChurnEventKind, Trace};

/// Stable size of the PlanetLab-like trace (the paper's `N = 239`).
pub const PLANETLAB_N: usize = 239;

/// Stable size of the Overnet-like trace (the paper's `N = 550`).
pub const OVERNET_N: usize = 550;

/// Overnet measurement granularity: availabilities sampled every 20 min.
pub const OVERNET_SLOT: DurMs = 20 * MINUTE;

/// A PlanetLab-like availability trace: 239 hosts, no births or deaths,
/// high mean availability (~85-90%), long heavy-tailed sessions,
/// second-granularity transitions.
///
/// # Example
///
/// ```
/// use avmon_churn::planetlab_like;
///
/// let t = planetlab_like(4 * avmon::HOUR, 1);
/// assert_eq!(t.stable_size, 239);
/// assert!(t.stats().mean_availability > 0.75);
/// ```
#[must_use]
pub fn planetlab_like(duration: DurMs, seed: u64) -> Trace {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let mut events = Vec::new();
    let mut control = Vec::new();

    for i in 0..PLANETLAB_N as u32 {
        let node = NodeId::from_index(i);
        control.push(node);
        // Per-host long-term availability: concentrated near 0.93 with a
        // tail of flakier hosts (PlanetLab reality).
        let a: f64 = (0.97 - rng.gen_range(0.0f64..1.0).powi(3) * 0.45).clamp(0.5, 0.99);
        // Mean session 8-24 hours, heavy-ish tail.
        let mean_up = rng.gen_range(8.0..24.0) * HOUR as f64;
        let mean_down = mean_up * (1.0 - a) / a;

        events.push(ChurnEvent {
            at: 0,
            node,
            kind: ChurnEventKind::Birth,
        });
        let mut t: f64 = 0.0;
        let mut up = true;
        loop {
            let mean = if up { mean_up } else { mean_down };
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            // Second-granularity transitions, at least one second apart.
            let dwell = (-u.ln() * mean).max(SECOND as f64);
            t += dwell;
            let at = (t as TimeMs) / SECOND * SECOND;
            if at >= duration {
                break;
            }
            let kind = if up {
                ChurnEventKind::Leave
            } else {
                ChurnEventKind::Join
            };
            events.push(ChurnEvent { at, node, kind });
            up = !up;
        }
    }

    Trace::new("PL", PLANETLAB_N, duration, 0, control, events)
}

/// An Overnet-like churn trace: stable alive population of 550, ~20%/hour
/// churn, births bringing total identities to ≈1319 over 48 hours, with
/// every transition quantized to the 20-minute measurement grid.
///
/// For durations other than 48 h the birth volume is scaled
/// proportionally, preserving the birth *rate*.
///
/// # Example
///
/// ```
/// use avmon_churn::overnet_like;
///
/// let t = overnet_like(4 * avmon::HOUR, 1);
/// assert_eq!(t.stable_size, 550);
/// // All events on the 20-minute grid.
/// assert!(t.events.iter().all(|e| e.at % (20 * avmon::MINUTE) == 0));
/// ```
#[must_use]
pub fn overnet_like(duration: DurMs, seed: u64) -> Trace {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x517c_c1b7);
    let n = OVERNET_N;
    let slots = (duration / OVERNET_SLOT) as usize;

    // Rates per slot. Churn: 20%/hour → 1/15 of alive nodes per 20-min slot.
    let p_leave = 0.2 / 3.0;
    // Births: (1319 − 550) identities over 48h ⇒ ≈5.34 per slot; deaths at
    // the same rate keep the alive count stable.
    let births_per_slot = (1319.0 - 550.0) / (48.0 * 3.0);
    let target_rejoins = p_leave * n as f64;

    let mut events = Vec::new();
    let mut next_index: u32 = 0;
    let mut alive: Vec<NodeId> = Vec::new();
    let mut down: Vec<NodeId> = Vec::new();
    let mut control: Vec<NodeId> = Vec::new();

    for _ in 0..n {
        let node = NodeId::from_index(next_index);
        next_index += 1;
        events.push(ChurnEvent {
            at: 0,
            node,
            kind: ChurnEventKind::Birth,
        });
        alive.push(node);
    }

    let mut birth_accum = 0.0f64;
    for slot in 1..=slots {
        let at = slot as TimeMs * OVERNET_SLOT;
        if at >= duration {
            break;
        }
        // Leaves: Bernoulli per alive node.
        let mut i = 0;
        while i < alive.len() {
            if alive.len() > n / 2 && rng.gen_bool(p_leave) {
                let node = alive.swap_remove(i);
                events.push(ChurnEvent {
                    at,
                    node,
                    kind: ChurnEventKind::Leave,
                });
                down.push(node);
            } else {
                i += 1;
            }
        }
        // Rejoins: pull the target number back from the down pool.
        let rejoins = (target_rejoins.round() as usize).min(down.len());
        for _ in 0..rejoins {
            let i = rng.gen_range(0..down.len());
            let node = down.swap_remove(i);
            events.push(ChurnEvent {
                at,
                node,
                kind: ChurnEventKind::Join,
            });
            alive.push(node);
        }
        // Births and matching deaths.
        birth_accum += births_per_slot;
        while birth_accum >= 1.0 {
            birth_accum -= 1.0;
            let node = NodeId::from_index(next_index);
            next_index += 1;
            events.push(ChurnEvent {
                at,
                node,
                kind: ChurnEventKind::Birth,
            });
            alive.push(node);
            control.push(node);
            if alive.len() > n / 2 {
                let i = rng.gen_range(0..alive.len());
                let victim = alive.swap_remove(i);
                events.push(ChurnEvent {
                    at,
                    node: victim,
                    kind: ChurnEventKind::Death,
                });
            }
        }
    }

    Trace::new("OV", n, duration, 0, control, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planetlab_has_high_availability_and_no_deaths() {
        let t = planetlab_like(24 * HOUR, 3);
        let s = t.stats();
        assert_eq!(s.identities, PLANETLAB_N);
        assert_eq!(s.deaths, 0);
        assert_eq!(s.births, PLANETLAB_N);
        assert!(
            s.mean_availability > 0.75 && s.mean_availability < 0.99,
            "mean availability {}",
            s.mean_availability
        );
        assert_eq!(t.control_group.len(), PLANETLAB_N);
    }

    #[test]
    fn planetlab_transitions_are_second_aligned() {
        let t = planetlab_like(6 * HOUR, 4);
        assert!(t.events.iter().all(|e| e.at % SECOND == 0));
    }

    #[test]
    fn overnet_is_slot_quantized_and_stable() {
        let t = overnet_like(48 * HOUR, 5);
        assert!(t.events.iter().all(|e| e.at % OVERNET_SLOT == 0));
        // Alive count hovers near 550 after the initial transient.
        for h in [6u64, 12, 24, 36, 47] {
            let alive = t.alive_at(h * HOUR);
            assert!(
                (380..=650).contains(&alive),
                "alive {alive} at hour {h} out of band"
            );
        }
    }

    #[test]
    fn overnet_birth_volume_matches_paper() {
        let t = overnet_like(48 * HOUR, 6);
        let s = t.stats();
        // Total identities over 48h ≈ 1319 (paper's N_longterm), ±10%.
        assert!(
            (1150..=1450).contains(&s.identities),
            "identities {} should be ≈ 1319",
            s.identities
        );
        assert!(
            s.deaths > 400,
            "deaths {} keep the population stable",
            s.deaths
        );
    }

    #[test]
    fn overnet_churn_rate_is_about_20_percent_per_hour() {
        let t = overnet_like(24 * HOUR, 7);
        let churn = t.stats().churn_per_hour;
        assert!((0.1..0.3).contains(&churn), "churn {churn} should be ≈ 0.2");
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(planetlab_like(2 * HOUR, 9), planetlab_like(2 * HOUR, 9));
        assert_eq!(overnet_like(2 * HOUR, 9), overnet_like(2 * HOUR, 9));
        assert_ne!(overnet_like(2 * HOUR, 9), overnet_like(2 * HOUR, 10));
    }

    #[test]
    fn short_durations_scale() {
        let t = overnet_like(2 * HOUR, 11);
        let s = t.stats();
        // ~16 births/hour.
        assert!(
            (10..=60).contains(&(s.births - OVERNET_N)),
            "births {}",
            s.births
        );
    }
}
