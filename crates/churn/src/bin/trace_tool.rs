//! `trace-tool` — generate, inspect and convert AVMON availability traces.
//!
//! ```bash
//! trace-tool gen synth    --n 500 --hours 4 --seed 7 --out synth.json
//! trace-tool gen overnet  --hours 48 --out ov.json
//! trace-tool stat ov.json
//! trace-tool convert ov.json ov.trace      # JSON ↔ text by extension
//! ```

use std::process::ExitCode;

use avmon::HOUR;
use avmon_churn::{overnet_like, planetlab_like, stat, synthetic, SynthParams, Trace};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("stat") => cmd_stat(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        _ => {
            eprintln!(
                "usage:\n  trace-tool gen <stat|synth|synth-bd|synth-bd2|planetlab|overnet> \
                 [--n N] [--hours H] [--seed S] --out FILE\n  trace-tool stat FILE\n  \
                 trace-tool convert IN OUT"
            );
            ExitCode::FAILURE
        }
    }
}

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn cmd_gen(args: &[String]) -> ExitCode {
    let Some(model) = args.first() else {
        eprintln!("gen: missing model");
        return ExitCode::FAILURE;
    };
    let n: usize = parse_flag(args, "--n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(500);
    let hours: f64 = parse_flag(args, "--hours")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4.0);
    let seed: u64 = parse_flag(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let Some(out) = parse_flag(args, "--out") else {
        eprintln!("gen: missing --out FILE");
        return ExitCode::FAILURE;
    };
    let duration = (hours * HOUR as f64) as u64;
    let trace = match model.as_str() {
        "stat" => stat(n, duration, 0.1, seed),
        "synth" => synthetic(SynthParams::synth(n).duration(duration).seed(seed)),
        "synth-bd" => synthetic(SynthParams::synth_bd(n).duration(duration).seed(seed)),
        "synth-bd2" => synthetic(SynthParams::synth_bd2(n).duration(duration).seed(seed)),
        "planetlab" | "pl" => planetlab_like(duration, seed),
        "overnet" | "ov" => overnet_like(duration, seed),
        other => {
            eprintln!("gen: unknown model {other:?}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = write_trace(&trace, &out) {
        eprintln!("gen: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} ({} events, {} identities)",
        out,
        trace.events.len(),
        trace.identities().len()
    );
    ExitCode::SUCCESS
}

fn cmd_stat(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("stat: missing FILE");
        return ExitCode::FAILURE;
    };
    let trace = match read_trace(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("stat: {e}");
            return ExitCode::FAILURE;
        }
    };
    let s = trace.stats();
    println!("trace          {}", trace.name);
    println!("stable size N  {}", trace.stable_size);
    println!("horizon        {:.2} h", trace.horizon as f64 / HOUR as f64);
    println!("identities     {}", s.identities);
    println!("births/deaths  {}/{}", s.births, s.deaths);
    println!("joins/leaves   {}/{}", s.joins, s.leaves);
    println!("mean avail     {:.3}", s.mean_availability);
    println!("churn          {:.1}%/hour", s.churn_per_hour * 100.0);
    println!("control group  {}", trace.control_group.len());
    for h in 0..((trace.horizon / HOUR).min(8)) {
        println!("alive @ {h:>2}h    {}", trace.alive_at(h * HOUR + HOUR / 2));
    }
    ExitCode::SUCCESS
}

fn cmd_convert(args: &[String]) -> ExitCode {
    let (Some(input), Some(output)) = (args.first(), args.get(1)) else {
        eprintln!("convert: need IN and OUT");
        return ExitCode::FAILURE;
    };
    match read_trace(input).and_then(|t| write_trace(&t, output)) {
        Ok(()) => {
            println!("converted {input} -> {output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("convert: {e}");
            ExitCode::FAILURE
        }
    }
}

fn read_trace(path: &str) -> Result<Trace, String> {
    if path.ends_with(".json") {
        avmon_churn::load_json(path).map_err(|e| e.to_string())
    } else {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        avmon_churn::from_text(&text).map_err(|e| e.to_string())
    }
}

fn write_trace(trace: &Trace, path: &str) -> Result<(), String> {
    if path.ends_with(".json") {
        avmon_churn::save_json(trace, path).map_err(|e| e.to_string())
    } else {
        std::fs::write(path, avmon_churn::to_text(trace)).map_err(|e| e.to_string())
    }
}
