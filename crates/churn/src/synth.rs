//! The paper's synthetic availability models (§5):
//!
//! * **STAT** — a static network with no churn;
//! * **SYNTH** — joins and leaves as Poisson processes at a 20%-per-hour
//!   churn rate, no births/deaths;
//! * **SYNTH-BD** — SYNTH plus births and deaths at 20% per day;
//! * **SYNTH-BD2** — births and deaths at twice that rate (§5.3).

use avmon::{DurMs, NodeId, TimeMs, HOUR};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::event::{ChurnEvent, ChurnEventKind, Trace};

/// Parameters of the synthetic churn generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthParams {
    /// Stable system size `N`.
    pub n: usize,
    /// Join/leave churn: fraction of `N` leaving per hour (0.2 in §5,
    /// "akin to the Overnet traces").
    pub churn_per_hour: f64,
    /// Birth/death rate: fraction of `N` born (and dying) per day
    /// (0.2 for SYNTH-BD, 0.4 for SYNTH-BD2, 0 for SYNTH).
    pub birth_death_per_day: f64,
    /// Warm-up length before measurement (1 hour in §5.1).
    pub warmup: DurMs,
    /// Measured duration after warm-up.
    pub duration: DurMs,
    /// Size of the explicit control group joining at the end of warm-up,
    /// as a fraction of `N` (10% in §5.1; ignored when births occur —
    /// SYNTH-BD's control group is implicit).
    pub control_fraction: f64,
    /// RNG seed; the trace is a pure function of the parameters.
    pub seed: u64,
}

impl SynthParams {
    /// The paper's SYNTH setting for stable size `n`.
    #[must_use]
    pub fn synth(n: usize) -> Self {
        SynthParams {
            n,
            churn_per_hour: 0.2,
            birth_death_per_day: 0.0,
            warmup: HOUR,
            duration: 4 * HOUR,
            control_fraction: 0.1,
            seed: 1,
        }
    }

    /// The paper's SYNTH-BD setting.
    #[must_use]
    pub fn synth_bd(n: usize) -> Self {
        SynthParams {
            birth_death_per_day: 0.2,
            control_fraction: 0.0,
            ..Self::synth(n)
        }
    }

    /// The high-churn SYNTH-BD2 setting (twice the birth/death rate, §5.3).
    #[must_use]
    pub fn synth_bd2(n: usize) -> Self {
        SynthParams {
            birth_death_per_day: 0.4,
            control_fraction: 0.0,
            ..Self::synth(n)
        }
    }

    /// Overrides the measured duration.
    #[must_use]
    pub fn duration(mut self, duration: DurMs) -> Self {
        self.duration = duration;
        self
    }

    /// Overrides the seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The STAT model: `n` nodes born at time zero, no churn; a control group
/// of `control_fraction·n` fresh nodes joins at the end of the one-hour
/// warm-up (§5.1).
#[must_use]
pub fn stat(n: usize, duration: DurMs, control_fraction: f64, seed: u64) -> Trace {
    let params = SynthParams {
        n,
        churn_per_hour: 0.0,
        birth_death_per_day: 0.0,
        warmup: HOUR,
        duration,
        control_fraction,
        seed,
    };
    let mut trace = synthetic(params);
    trace.name = "STAT".into();
    trace
}

/// Generates a synthetic trace per `params` (SYNTH family).
///
/// System-wide Poisson processes: leaves at `churn_per_hour·N` per hour
/// pick a uniformly random alive node; rejoins at the same rate pick a
/// uniformly random down node; births introduce fresh identities and deaths
/// remove uniformly random alive identities for good, both at
/// `birth_death_per_day·N` per day.
#[must_use]
pub fn synthetic(params: SynthParams) -> Trace {
    let SynthParams {
        n,
        churn_per_hour,
        birth_death_per_day,
        warmup,
        duration,
        ..
    } = params;
    assert!(n > 0, "system size must be positive");
    let horizon = warmup + duration;
    let mut rng = SmallRng::seed_from_u64(params.seed ^ 0xa5a5_5a5a);

    let mut events: Vec<ChurnEvent> = Vec::new();
    let mut next_index: u32 = 0;
    let fresh_id = |next_index: &mut u32| {
        let id = NodeId::from_index(*next_index);
        *next_index += 1;
        id
    };

    // Initial population, all born at t = 0.
    let mut alive: Vec<NodeId> = Vec::with_capacity(n * 2);
    let mut down: Vec<NodeId> = Vec::new();
    for _ in 0..n {
        let id = fresh_id(&mut next_index);
        events.push(ChurnEvent {
            at: 0,
            node: id,
            kind: ChurnEventKind::Birth,
        });
        alive.push(id);
    }

    // Per-millisecond system rates.
    let nf = n as f64;
    let rate_leave = churn_per_hour * nf / HOUR as f64;
    let rate_rejoin = rate_leave;
    let rate_birth = birth_death_per_day * nf / (24 * HOUR) as f64;
    let rate_death = rate_birth;
    let total_rate = rate_leave + rate_rejoin + rate_birth + rate_death;

    let mut born_after_warmup: Vec<NodeId> = Vec::new();
    let mut control: Vec<NodeId> = Vec::new();
    let mut control_injected = params.control_fraction <= 0.0;

    if total_rate > 0.0 {
        let mut t: f64 = 1.0; // strictly after the initial births
        loop {
            // Exponential inter-arrival for the merged process.
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -u.ln() / total_rate;
            let at = t as TimeMs;
            if at >= horizon {
                break;
            }
            // Inject the control group exactly at warm-up end.
            if !control_injected && at >= warmup {
                control_injected = true;
                inject_control(
                    &mut events,
                    &mut alive,
                    &mut control,
                    &mut next_index,
                    n,
                    params.control_fraction,
                    warmup,
                );
            }
            // Choose which process fired.
            let pick: f64 = rng.gen_range(0.0..total_rate);
            if pick < rate_leave {
                if alive.len() > n / 4 {
                    let i = rng.gen_range(0..alive.len());
                    let node = alive.swap_remove(i);
                    events.push(ChurnEvent {
                        at,
                        node,
                        kind: ChurnEventKind::Leave,
                    });
                    down.push(node);
                }
            } else if pick < rate_leave + rate_rejoin {
                if !down.is_empty() {
                    let i = rng.gen_range(0..down.len());
                    let node = down.swap_remove(i);
                    events.push(ChurnEvent {
                        at,
                        node,
                        kind: ChurnEventKind::Join,
                    });
                    alive.push(node);
                }
            } else if pick < rate_leave + rate_rejoin + rate_birth {
                let node = fresh_id(&mut next_index);
                events.push(ChurnEvent {
                    at,
                    node,
                    kind: ChurnEventKind::Birth,
                });
                alive.push(node);
                if at >= warmup {
                    born_after_warmup.push(node);
                }
            } else if alive.len() > n / 4 {
                let i = rng.gen_range(0..alive.len());
                let node = alive.swap_remove(i);
                events.push(ChurnEvent {
                    at,
                    node,
                    kind: ChurnEventKind::Death,
                });
            }
        }
    }
    if !control_injected {
        inject_control(
            &mut events,
            &mut alive,
            &mut control,
            &mut next_index,
            n,
            params.control_fraction,
            warmup,
        );
    }

    // SYNTH-BD's control group is implicit: nodes born after warm-up.
    if control.is_empty() {
        control = born_after_warmup;
    }

    let bd = birth_death_per_day;
    let name = if churn_per_hour <= 0.0 {
        "STAT".to_string()
    } else if bd == 0.0 {
        "SYNTH".to_string()
    } else if (bd - 0.2).abs() < 1e-9 {
        "SYNTH-BD".to_string()
    } else if (bd - 0.4).abs() < 1e-9 {
        "SYNTH-BD2".to_string()
    } else {
        format!("SYNTH-BD({bd})")
    };
    Trace::new(name, n, horizon, warmup, control, events)
}

fn inject_control(
    events: &mut Vec<ChurnEvent>,
    alive: &mut Vec<NodeId>,
    control: &mut Vec<NodeId>,
    next_index: &mut u32,
    n: usize,
    fraction: f64,
    warmup: TimeMs,
) {
    let count = (fraction * n as f64).round() as usize;
    for _ in 0..count {
        let node = NodeId::from_index(*next_index);
        *next_index += 1;
        events.push(ChurnEvent {
            at: warmup,
            node,
            kind: ChurnEventKind::Birth,
        });
        alive.push(node);
        control.push(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_has_no_churn_events() {
        let t = stat(100, 2 * HOUR, 0.1, 7);
        assert_eq!(t.name, "STAT");
        let s = t.stats();
        assert_eq!(s.leaves + s.joins + s.deaths, 0);
        assert_eq!(s.births, 110);
        assert_eq!(t.control_group.len(), 10);
        // Control group joins exactly at warm-up end.
        for c in &t.control_group {
            let birth = t.events.iter().find(|e| e.node == *c).unwrap();
            assert_eq!(birth.at, HOUR);
        }
    }

    #[test]
    fn synth_matches_target_churn_rate() {
        let t = synthetic(SynthParams::synth(500).duration(6 * HOUR));
        assert_eq!(t.name, "SYNTH");
        let s = t.stats();
        assert_eq!(s.births, 550, "500 initial + 50 control");
        assert_eq!(s.deaths, 0);
        // 20%/hour ± 25% statistical slack.
        assert!(
            (s.churn_per_hour - 0.2).abs() < 0.05,
            "churn {} should be ≈ 0.2/hour",
            s.churn_per_hour
        );
    }

    #[test]
    fn synth_keeps_system_size_stable() {
        let t = synthetic(SynthParams::synth(500).duration(6 * HOUR));
        for hour in 1..7 {
            let alive = t.alive_at(hour * HOUR);
            assert!(
                (350..=650).contains(&alive),
                "alive {alive} at hour {hour} drifted outside the stable band"
            );
        }
    }

    #[test]
    fn synth_bd_has_births_and_deaths() {
        let t = synthetic(SynthParams::synth_bd(500).duration(12 * HOUR));
        assert_eq!(t.name, "SYNTH-BD");
        let s = t.stats();
        // 20%/day on N=500 over 13 hours ≈ 54 births; wide statistical band.
        assert!(
            (30..=90).contains(&s.births.saturating_sub(500)),
            "births {}",
            s.births
        );
        assert!(s.deaths > 10);
        // Implicit control group: born after warm-up.
        assert!(!t.control_group.is_empty());
        for c in &t.control_group {
            let birth = t
                .events
                .iter()
                .find(|e| e.node == *c && e.kind == ChurnEventKind::Birth)
                .unwrap();
            assert!(birth.at >= HOUR);
        }
    }

    #[test]
    fn synth_bd2_doubles_birth_rate() {
        let bd = synthetic(SynthParams::synth_bd(1000).duration(12 * HOUR)).stats();
        let bd2 = synthetic(SynthParams::synth_bd2(1000).duration(12 * HOUR)).stats();
        let (b1, b2) = (bd.births - 1000, bd2.births - 1000);
        let ratio = b2 as f64 / b1.max(1) as f64;
        assert!(
            (1.4..2.8).contains(&ratio),
            "BD2/BD birth ratio {ratio} should be ≈ 2"
        );
    }

    #[test]
    fn traces_are_deterministic_in_seed() {
        let a = synthetic(SynthParams::synth(200).seed(9));
        let b = synthetic(SynthParams::synth(200).seed(9));
        let c = synthetic(SynthParams::synth(200).seed(10));
        assert_eq!(a, b);
        assert_ne!(a.events, c.events);
    }
}
