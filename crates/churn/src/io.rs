//! Trace serialization: JSON (self-describing) and a line-oriented text
//! format for interoperability with external trace tooling.
//!
//! The text format is one event per line —
//! `<time_ms> <birth|join|leave|death> <ip:port>` — preceded by a header
//! line `#avmon-trace <name> <stable_size> <horizon_ms> <measure_from_ms>`
//! and an optional `#control <ip:port>...` line. Real measured traces (e.g.
//! re-obtained PlanetLab pings) can be converted to this format and fed to
//! every experiment unchanged.

use std::fmt::Write as _;
use std::path::Path;

use avmon::NodeId;

use crate::event::{ChurnEvent, ChurnEventKind, Trace};

/// Errors from trace parsing and file I/O.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying file error.
    Io(std::io::Error),
    /// JSON (de)serialization error.
    Json(serde_json::Error),
    /// Text-format syntax error with line number and explanation.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl core::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace file error: {e}"),
            TraceIoError::Json(e) => write!(f, "trace json error: {e}"),
            TraceIoError::Syntax { line, message } => {
                write!(f, "trace syntax error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Json(e) => Some(e),
            TraceIoError::Syntax { .. } => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<serde_json::Error> for TraceIoError {
    fn from(e: serde_json::Error) -> Self {
        TraceIoError::Json(e)
    }
}

/// Serializes a trace to pretty JSON.
///
/// # Errors
///
/// Returns [`TraceIoError::Json`] if serialization fails.
pub fn to_json(trace: &Trace) -> Result<String, TraceIoError> {
    Ok(serde_json::to_string_pretty(trace)?)
}

/// Parses a trace from JSON.
///
/// # Errors
///
/// Returns [`TraceIoError::Json`] on malformed JSON.
pub fn from_json(json: &str) -> Result<Trace, TraceIoError> {
    Ok(serde_json::from_str(json)?)
}

/// Writes a trace to a JSON file.
///
/// # Errors
///
/// Returns [`TraceIoError`] on serialization or file errors.
pub fn save_json(trace: &Trace, path: impl AsRef<Path>) -> Result<(), TraceIoError> {
    std::fs::write(path, to_json(trace)?)?;
    Ok(())
}

/// Reads a trace from a JSON file.
///
/// # Errors
///
/// Returns [`TraceIoError`] on file or parse errors.
pub fn load_json(path: impl AsRef<Path>) -> Result<Trace, TraceIoError> {
    from_json(&std::fs::read_to_string(path)?)
}

/// Serializes a trace to the line-oriented text format.
#[must_use]
pub fn to_text(trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "#avmon-trace {} {} {} {}",
        trace.name, trace.stable_size, trace.horizon, trace.measure_from
    );
    if !trace.control_group.is_empty() {
        let ids: Vec<String> = trace
            .control_group
            .iter()
            .map(ToString::to_string)
            .collect();
        let _ = writeln!(out, "#control {}", ids.join(" "));
    }
    for e in &trace.events {
        let kind = match e.kind {
            ChurnEventKind::Birth => "birth",
            ChurnEventKind::Join => "join",
            ChurnEventKind::Leave => "leave",
            ChurnEventKind::Death => "death",
        };
        let _ = writeln!(out, "{} {} {}", e.at, kind, e.node);
    }
    out
}

/// Parses the line-oriented text format.
///
/// # Errors
///
/// Returns [`TraceIoError::Syntax`] with the offending line number on any
/// malformed header, kind, time or node id.
pub fn from_text(text: &str) -> Result<Trace, TraceIoError> {
    let syntax = |line: usize, message: String| TraceIoError::Syntax { line, message };
    let mut lines = text.lines().enumerate();

    let (_, header) = lines
        .next()
        .ok_or_else(|| syntax(1, "empty trace file".into()))?;
    let parts: Vec<&str> = header.split_whitespace().collect();
    if parts.len() != 5 || parts[0] != "#avmon-trace" {
        return Err(syntax(1, format!("bad header: {header:?}")));
    }
    let name = parts[1].to_string();
    let stable_size: usize = parts[2]
        .parse()
        .map_err(|e| syntax(1, format!("stable size: {e}")))?;
    let horizon = parts[3]
        .parse()
        .map_err(|e| syntax(1, format!("horizon: {e}")))?;
    let measure_from = parts[4]
        .parse()
        .map_err(|e| syntax(1, format!("measure_from: {e}")))?;

    let mut control = Vec::new();
    let mut events = Vec::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("#control") {
            for tok in rest.split_whitespace() {
                control.push(
                    tok.parse::<NodeId>()
                        .map_err(|e| syntax(line_no, format!("control id: {e}")))?,
                );
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // comment
        }
        let mut tok = line.split_whitespace();
        let (Some(t), Some(kind), Some(node)) = (tok.next(), tok.next(), tok.next()) else {
            return Err(syntax(
                line_no,
                format!("expected '<time> <kind> <node>': {line:?}"),
            ));
        };
        let at = t
            .parse()
            .map_err(|e| syntax(line_no, format!("time: {e}")))?;
        let kind = match kind {
            "birth" => ChurnEventKind::Birth,
            "join" => ChurnEventKind::Join,
            "leave" => ChurnEventKind::Leave,
            "death" => ChurnEventKind::Death,
            other => return Err(syntax(line_no, format!("unknown kind {other:?}"))),
        };
        let node = node
            .parse::<NodeId>()
            .map_err(|e| syntax(line_no, format!("node id: {e}")))?;
        events.push(ChurnEvent { at, node, kind });
    }
    Ok(Trace::new(
        name,
        stable_size,
        horizon,
        measure_from,
        control,
        events,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{stat, synthetic, SynthParams};
    use avmon::HOUR;

    #[test]
    fn json_round_trip() {
        let t = synthetic(SynthParams::synth(100).duration(HOUR));
        let json = to_json(&t).unwrap();
        assert_eq!(from_json(&json).unwrap(), t);
    }

    #[test]
    fn text_round_trip() {
        let t = synthetic(SynthParams::synth_bd(80).duration(2 * HOUR));
        let text = to_text(&t);
        let back = from_text(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn file_round_trip() {
        let t = stat(50, HOUR, 0.1, 3);
        let dir = std::env::temp_dir().join("avmon-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stat.json");
        save_json(&t, &path).unwrap();
        assert_eq!(load_json(&path).unwrap(), t);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(matches!(
            from_text(""),
            Err(TraceIoError::Syntax { line: 1, .. })
        ));
        assert!(matches!(
            from_text("#avmon-trace x 1"),
            Err(TraceIoError::Syntax { line: 1, .. })
        ));
        let bad_kind = "#avmon-trace t 1 1000 0\n10 explode 10.0.0.1:4000\n";
        assert!(matches!(
            from_text(bad_kind),
            Err(TraceIoError::Syntax { line: 2, .. })
        ));
        let bad_id = "#avmon-trace t 1 1000 0\n10 birth nonsense\n";
        assert!(matches!(
            from_text(bad_id),
            Err(TraceIoError::Syntax { line: 2, .. })
        ));
    }

    #[test]
    fn text_allows_comments_and_blank_lines() {
        let text = "#avmon-trace mini 1 1000 0\n# a comment\n\n0 birth 10.0.0.1:4000\n";
        let t = from_text(text).unwrap();
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.name, "mini");
    }

    #[test]
    fn error_display_is_informative() {
        let e = from_text("").unwrap_err();
        assert!(e.to_string().contains("line 1"));
    }
}
