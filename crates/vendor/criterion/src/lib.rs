//! Offline, API-compatible subset of `criterion`.
//!
//! Implements the macro and builder surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput` — over a simple
//! warmup-then-measure wall-clock loop. No statistics beyond mean time per
//! iteration; results print as `name ... <time>/iter (<throughput>)`.

// Vendored stub: outside the determinism boundary.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-per-iteration metadata, reported as throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// The timing loop handle passed to bench closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    target: Duration,
}

impl Bencher {
    /// Times `routine`, warmup then measurement.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: run until ~50 ms to size the batch.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed() / calib_iters.max(1) as u32;
        let budget_iters = if per_iter.is_zero() {
            10_000
        } else {
            (self.target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000_000) as u64
        };
        let start = Instant::now();
        for _ in 0..budget_iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters_done = budget_iters;
    }
}

/// Global benchmark configuration (mostly ignored by this stub).
pub struct Criterion {
    measure_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args().nth(1).filter(|a| !a.starts_with('-'));
        Criterion {
            measure_time: Duration::from_millis(300),
            filter,
        }
    }
}

impl Criterion {
    /// Accepted for API parity; the stub sizes batches by time, not count.
    #[must_use]
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Accepted for API parity.
    #[must_use]
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.measure_time = time;
        self
    }

    /// Accepted for API parity (CLI args are consulted in `default()`).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn skipped(&self, name: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !name.contains(f))
    }

    fn run_one(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        if self.skipped(name) {
            return;
        }
        let mut bencher = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            target: self.measure_time,
        };
        f(&mut bencher);
        let per_iter_ns = if bencher.iters_done == 0 {
            0.0
        } else {
            bencher.elapsed.as_nanos() as f64 / bencher.iters_done as f64
        };
        let rate = throughput
            .map(|t| {
                let (amount, unit) = match t {
                    Throughput::Bytes(b) => (b as f64, "MB/s"),
                    Throughput::Elements(e) => (e as f64, "Melem/s"),
                };
                let per_sec = amount / (per_iter_ns / 1e9) / 1e6;
                format!("  ({per_sec:.1} {unit})")
            })
            .unwrap_or_default();
        println!("bench  {name:<50} {:>12.1} ns/iter{rate}", per_iter_ns);
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_one(name, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing throughput metadata.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API parity.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.criterion.measure_time = time;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        self.criterion.run_one(&name, throughput, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        self.criterion
            .run_one(&name, throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
