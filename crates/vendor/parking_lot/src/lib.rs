//! Offline, API-compatible subset of `parking_lot`: `Mutex` and `RwLock`
//! with non-poisoning guards, backed by `std::sync` (poison is swallowed —
//! a panicking holder does not wedge other threads, matching parking_lot's
//! no-poison semantics).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock (ignoring poison).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A readers-writer lock whose guards never surface poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard (ignoring poison).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard (ignoring poison).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn shared_across_threads() {
        let counter = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *c.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 800);
    }
}
