//! Offline, API-compatible subset of `proptest`.
//!
//! Supports the strategy surface this workspace's property tests use:
//! `any::<T>()`, integer/float range strategies, tuples of strategies,
//! `Just`, `prop_oneof!`, `proptest::collection::vec`,
//! `proptest::option::of`, `.prop_map`, and the `proptest!` macro with
//! `prop_assert*` / `prop_assume!` and `#![proptest_config]`.
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed, there is **no shrinking** (failures print the raw
//! inputs), and the default case count is 64.

use rand::rngs::SmallRng;
use rand::Rng;

// Re-exported so the `proptest!` macro can name rand items via `$crate`
// without requiring a direct rand dependency in the invoking crate.
pub use rand;

/// Test-case generation RNG (deterministic).
pub type TestRng = SmallRng;

/// Why a generated case did not produce a verdict.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case does not count.
    Reject,
    /// A `prop_assert*` failed — the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: core::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: core::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V> {
    inner: std::rc::Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V: core::fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.inner)(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: core::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + core::fmt::Debug>(pub T);

impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V: core::fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

// ------------------------------------------------------------ `any::<T>()`

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized + core::fmt::Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only: the workspace's properties assume numbers.
        rng.gen_range(-1.0e12..1.0e12)
    }
}

impl<T: Arbitrary + Default + Copy, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::arbitrary(rng);
        }
        out
    }
}

/// Strategy adapter for [`Arbitrary`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

// ------------------------------------------------------- range strategies

macro_rules! strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
strategy_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! strategy_tuple {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
strategy_tuple! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A strategy for vectors whose length is drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Vectors of `element` values, `len` elements long.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A strategy producing `None` a quarter of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Optional values of `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Everything tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, option};
    }
}

/// Deterministic per-test RNG seed (override with `PROPTEST_SEED`).
#[must_use]
pub fn test_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x853c_49e6_748f_ea9b)
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::TestCaseError::fail(::std::format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("{}: {:?} != {:?}", ::std::format!($($fmt)*), l, r)));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} == {:?}", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("{}: {:?} == {:?}", ::std::format!($($fmt)*), l, r)));
        }
    }};
}

/// Rejects the current case (it does not count) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` runs the
/// body over generated cases.
#[macro_export]
macro_rules! proptest {
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng = <$crate::TestRng as $crate::rand::SeedableRng>::seed_from_u64(
                    $crate::test_seed());
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts < config.cases.saturating_mul(20).max(1000),
                        "too many rejected cases in {}", stringify!($name),
                    );
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                    // Render the inputs before the body can consume them.
                    let rendered_inputs = ::std::format!("{:#?}", ($(&$arg,)+));
                    let result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match result {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed after {} cases: {}\ninputs: {}",
                                stringify!($name), accepted, msg, rendered_inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}
