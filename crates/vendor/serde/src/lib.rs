//! Offline, API-compatible subset of `serde`.
//!
//! Instead of serde's visitor-based data model, this stub serializes through
//! a concrete [`Value`] tree (null / bool / numbers / strings / sequences /
//! maps). `#[derive(Serialize, Deserialize)]` is provided by the sibling
//! `serde_derive` stub and generates `to_value` / `from_value`
//! implementations. The `serde_json` stub prints and parses [`Value`]s.
//!
//! Only self-consistency is guaranteed: values round-trip through this
//! implementation, but the wire format is not byte-compatible with the real
//! serde_json for every type (maps with non-string keys are encoded as
//! arrays of pairs).

// Vendored stub: outside the determinism boundary.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model everything serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON null.
    Null,
    /// JSON true/false.
    Bool(bool),
    /// A negative integer.
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered key-value map.
    Map(Vec<(Value, Value)>),
}

impl Value {
    /// Builds a map value from string keys.
    #[must_use]
    pub fn record(fields: Vec<(&str, Value)>) -> Value {
        Value::Map(
            fields
                .into_iter()
                .map(|(k, v)| (Value::Str(k.to_owned()), v))
                .collect(),
        )
    }

    /// Looks up a string key in a map value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find_map(|(k, v)| match k {
                Value::Str(s) if s == key => Some(v),
                _ => None,
            }),
            _ => None,
        }
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl core::fmt::Display for DeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Builds an error describing a shape mismatch.
    #[must_use]
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {got:?}"))
    }
}

/// Types that can convert themselves into a [`Value`].
pub trait Serialize {
    /// The value-tree encoding of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, or explains why the value has the wrong shape.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] if `value` does not have the expected shape.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// A `Value` serializes as itself, so callers can round-trip arbitrary
// JSON through `serde_json::from_str::<Value>` / `to_string`, inspect or
// edit the tree, and re-emit it.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

// ------------------------------------------------------------- primitives

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| DeError(format!(
                    "{} out of range for {}", wide, stringify!($t))))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::Int(v) } else { Value::UInt(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| DeError(format!("{u} out of i64 range")))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| DeError(format!(
                    "{} out of range for {}", wide, stringify!($t))))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! ser_seq {
    ($($c:ident),*) => {$(
        impl<T: Serialize> Serialize for $c<T> {
            fn to_value(&self) -> Value {
                Value::Seq(self.iter().map(Serialize::to_value).collect())
            }
        }
        impl<T: Deserialize> Deserialize for $c<T>
        where
            $c<T>: FromIterator<T>,
        {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Seq(items) => items.iter().map(T::from_value).collect(),
                    other => Err(DeError::expected("sequence", other)),
                }
            }
        }
    )*};
}
ser_seq!(Vec, VecDeque);

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            other => Err(DeError::expected("fixed-length sequence", other)),
        }
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

fn map_entries<K: Deserialize, V: Deserialize>(value: &Value) -> Result<Vec<(K, V)>, DeError> {
    match value {
        Value::Map(entries) => entries
            .iter()
            .map(|(k, v)| Ok((K::from_value(k)?, V::from_value(v)?)))
            .collect(),
        // Maps with non-string keys round-trip through JSON as arrays of
        // [key, value] pairs; accept that shape too.
        Value::Seq(items) => items
            .iter()
            .map(|pair| match pair {
                Value::Seq(kv) if kv.len() == 2 => {
                    Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                }
                other => Err(DeError::expected("[key, value] pair", other)),
            })
            .collect(),
        other => Err(DeError::expected("map", other)),
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(map_entries::<K, V>(value)?.into_iter().collect())
    }
}

impl<K: Serialize + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(map_entries::<K, V>(value)?.into_iter().collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Seq(items) if items.len() == [$($n),+].len() => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::expected("tuple sequence", other)),
                }
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-5i32).to_value()).unwrap(), -5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"x".to_owned().to_value()).unwrap(), "x");
    }

    #[test]
    fn container_round_trips() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        let m: BTreeMap<u32, String> = [(1, "a".to_owned())].into_iter().collect();
        assert_eq!(
            BTreeMap::<u32, String>::from_value(&m.to_value()).unwrap(),
            m
        );
        let arr = [9u8, 8, 7, 6];
        assert_eq!(<[u8; 4]>::from_value(&arr.to_value()).unwrap(), arr);
        let t = (1u8, "y".to_owned(), 2.5f64);
        assert_eq!(<(u8, String, f64)>::from_value(&t.to_value()).unwrap(), t);
    }
}
