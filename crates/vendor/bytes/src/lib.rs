//! Offline, API-compatible subset of the `bytes` crate: [`Bytes`],
//! [`BytesMut`] and the big-endian [`Buf`]/[`BufMut`] accessors the AVMON
//! wire codec uses. Backed by plain `Vec<u8>` — no refcounted slices.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable byte buffer (cheaply cloneable).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::new(data.to_vec()),
        }
    }

    /// The buffer contents as a vector.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_ref().clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::new(data),
        }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `capacity` bytes reserved.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Freezes into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
        }
    }

    /// Number of bytes written.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Clears the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Splits off the written bytes, leaving `self` empty with an
    /// equal-capacity allocation — the zero-realloc batching idiom.
    #[must_use]
    pub fn split(&mut self) -> BytesMut {
        let replacement = Vec::with_capacity(self.data.capacity());
        BytesMut {
            data: std::mem::replace(&mut self.data, replacement),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential big-endian reads from a buffer.
///
/// # Panics
///
/// All accessors panic when the buffer is too short, exactly like the real
/// crate — codecs must bounds-check first.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Advances past `n` bytes.
    fn advance(&mut self, n: usize);
    /// Copies `dst.len()` bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }
    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }
    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Sequential big-endian writes into a buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_big_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16(0x1234);
        buf.put_u32(0xdead_beef);
        buf.put_u64(42);
        buf.put_f64(0.5);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.get_f64(), 0.5);
        let mut two = [0u8; 2];
        r.copy_to_slice(&mut two);
        assert_eq!(&two, b"xy");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn split_keeps_writing() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_slice(b"abc");
        let first = buf.split();
        assert_eq!(&first[..], b"abc");
        assert!(buf.is_empty());
        assert!(
            buf.data.capacity() >= 64,
            "split retains capacity for reuse"
        );
        buf.put_slice(b"de");
        assert_eq!(&buf[..], b"de");
    }
}
