//! Offline, API-compatible subset of `crossbeam`: the `channel` module,
//! backed by `std::sync::mpsc` (whose `Sender` is `Sync` since Rust 1.72).

/// MPMC-ish channels (multi-producer, single-consumer here — all this
/// workspace needs).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Why `try_recv` returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message waiting.
        Empty,
        /// All senders dropped.
        Disconnected,
    }

    /// Why `recv_timeout` returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed first.
        Timeout,
        /// All senders dropped.
        Disconnected,
    }

    /// The send failed because all receivers dropped; returns the message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Sending half.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only if every receiver is gone.
        ///
        /// # Errors
        ///
        /// Returns the value back if the channel is disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] when all senders dropped.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking receive with a deadline.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] when the timeout elapses,
        /// [`RecvTimeoutError::Disconnected`] when all senders dropped.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Blocking receive.
        ///
        /// # Errors
        ///
        /// Fails only when all senders dropped.
        pub fn recv(&self) -> Result<T, TryRecvError> {
            self.inner.recv().map_err(|_| TryRecvError::Disconnected)
        }
    }

    /// Creates an unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(42u32).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn timeout_fires() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
