//! Offline, API-compatible subset of the `rand` crate.
//!
//! Implements exactly the surface this workspace uses: [`rngs::SmallRng`]
//! (xoshiro256** seeded through SplitMix64), the [`Rng`] extension methods
//! `gen`, `gen_range`, `gen_bool`, the [`SeedableRng::seed_from_u64`]
//! constructor, and the [`seq::SliceRandom`] helpers `choose`,
//! `choose_multiple` and `shuffle`.
//!
//! The generator is deterministic and high-quality, but the *streams differ*
//! from the real `rand` crate — seeds are reproducible within this
//! workspace, not across implementations.

// Vendored stub: outside the determinism boundary.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

/// A source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from an `Rng` ("standard"
/// distribution in real rand).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i32
    }
}
impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Lemire-style rejection-free modulo is overkill here; a
                // 128-bit multiply-shift keeps bias below 2^-64.
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                self.start + (wide >> 64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return Standard::sample(rng);
                }
                // wrapping_sub: signed starts sign-extend to huge u128
                // values; modular arithmetic still yields the true span.
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                start.wrapping_add((wide >> 64) as $t)
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit: f64 = Standard::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in gen_range");
        let unit: f64 = Standard::sample(rng);
        start + unit * (end - start)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        let unit: f64 = Standard::sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
        /// 64-bit words drawn since construction. Every `gen` / `gen_range`
        /// / `gen_bool` / `choose` pulls at least one word, so this counts
        /// the generator's position in its stream — the raw material of the
        /// workspace's RNG-stream ledger (see `avmon_sim`'s
        /// `InvariantSummary::rng_ledger`).
        draws: u64,
    }

    impl SmallRng {
        /// How many 64-bit words this generator has produced so far.
        ///
        /// Deterministic for a deterministic caller: two same-seed runs
        /// that diverge in *where* they consume randomness show up here as
        /// a draw-count difference long before the divergence is visible in
        /// any downstream value.
        #[must_use]
        pub fn draw_count(&self) -> u64 {
            self.draws
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s, draws: 0 }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.draws += 1;
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (all of them if the
        /// slice is shorter).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index table.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx.truncate(amount);
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<&T>>()
                .into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let s: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&s), "signed inclusive range");
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
            let f: f64 = rng.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn draw_count_tracks_words_pulled() {
        let mut rng = SmallRng::seed_from_u64(11);
        assert_eq!(rng.draw_count(), 0);
        let _: u64 = rng.gen();
        assert_eq!(rng.draw_count(), 1, "gen::<u64> is one word");
        let _: u64 = rng.gen_range(0..100);
        assert_eq!(rng.draw_count(), 2, "gen_range is one word");
        let _ = rng.gen_bool(0.5);
        assert_eq!(rng.draw_count(), 3, "gen_bool is one word");
        // Clones carry their position; the streams stay in lockstep.
        let clone = rng.clone();
        assert_eq!(clone.draw_count(), 3);
        // Two same-seed generators drawn identically agree exactly.
        let mut a = SmallRng::seed_from_u64(4);
        let mut b = SmallRng::seed_from_u64(4);
        for _ in 0..17 {
            let _: u32 = a.gen();
            let _: u32 = b.gen();
        }
        assert_eq!(a.draw_count(), b.draw_count());
        assert_eq!(a, b);
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let uniq: std::collections::HashSet<_> = picked.iter().collect();
        assert_eq!(uniq.len(), 10, "choose_multiple is without replacement");
    }
}
