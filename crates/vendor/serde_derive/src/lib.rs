//! `#[derive(Serialize, Deserialize)]` for the vendored serde stub.
//!
//! A minimal hand-rolled parser over `proc_macro::TokenStream` (the offline
//! build has no `syn`/`quote`): it extracts the type's shape — struct with
//! named fields, tuple struct, unit struct, or enum whose variants are any
//! of those three — and emits `to_value` / `from_value` implementations
//! against `::serde::Value`. Generic types are not supported (none of the
//! workspace's serialized types are generic).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Parsed {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    /// Skips `#[...]` attribute groups (doc comments included).
    fn skip_attributes(&mut self) {
        while self.at_punct('#') {
            self.next(); // '#'
            if matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
                self.next(); // inner attribute '!'
            }
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    self.next();
                }
                _ => break,
            }
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Skips a `<...>` generics block if present.
    fn skip_generics(&mut self) {
        if !self.at_punct('<') {
            return;
        }
        let mut depth = 0i32;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            return;
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// Skips tokens until a top-level (angle-bracket aware) `,`, consuming
    /// the comma itself. Returns false when the stream ends first.
    fn skip_until_comma(&mut self) -> bool {
        let mut angle = 0i32;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => return true,
                    _ => {}
                }
            }
        }
        false
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let mut cur = Cursor::new(group);
    let mut fields = Vec::new();
    loop {
        cur.skip_attributes();
        cur.skip_visibility();
        let Some(TokenTree::Ident(name)) = cur.next() else {
            break;
        };
        fields.push(name.to_string());
        // ':' then the type, up to the next top-level comma.
        assert!(cur.at_punct(':'), "expected ':' after field {name}");
        cur.next();
        if !cur.skip_until_comma() {
            break;
        }
    }
    fields
}

fn count_tuple_fields(group: TokenStream) -> usize {
    let mut cur = Cursor::new(group);
    if cur.peek().is_none() {
        return 0;
    }
    let mut count = 1;
    while cur.skip_until_comma() {
        if cur.peek().is_none() {
            break; // trailing comma
        }
        count += 1;
    }
    count
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(group);
    let mut variants = Vec::new();
    loop {
        cur.skip_attributes();
        let Some(TokenTree::Ident(name)) = cur.next() else {
            break;
        };
        let shape = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cur.next();
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                cur.next();
                Shape::Tuple(count)
            }
            _ => Shape::Unit,
        };
        variants.push(Variant {
            name: name.to_string(),
            shape,
        });
        // Discriminant (`= expr`) and/or the separating comma.
        if !cur.skip_until_comma() {
            break;
        }
    }
    variants
}

fn parse(input: TokenStream) -> Parsed {
    let mut cur = Cursor::new(input);
    cur.skip_attributes();
    cur.skip_visibility();
    let kind = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected struct/enum, found {other:?}"),
    };
    let name = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    assert!(
        !cur.at_punct('<'),
        "the vendored serde derive does not support generic type {name}"
    );
    cur.skip_generics();
    match kind.as_str() {
        "struct" => {
            let shape = match cur.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Shape::Unit,
            };
            Parsed::Struct { name, shape }
        }
        "enum" => {
            let group = match cur.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body, found {other:?}"),
            };
            Parsed::Enum {
                name,
                variants: parse_variants(group),
            }
        }
        other => panic!("cannot derive for {other}"),
    }
}

// ------------------------------------------------------------ serialization

fn named_to_value(fields: &[String], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::serde::Value::Str(\"{f}\".to_owned()), \
                 ::serde::Serialize::to_value(&{access_prefix}{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

fn ser_struct(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => named_to_value(fields, "self."),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::Unit => format!("::serde::Value::Str(\"{name}\".to_owned())"),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}\n"
    )
}

fn ser_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            Shape::Unit => arms.push_str(&format!(
                "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_owned()),\n"
            )),
            Shape::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vname}({binds}) => ::serde::Value::Map(::std::vec![\
                       (::serde::Value::Str(\"{vname}\".to_owned()), \
                        ::serde::Value::Seq(::std::vec![{items}]))]),\n",
                    binds = binds.join(", "),
                    items = items.join(", "),
                ));
            }
            Shape::Named(fields) => {
                let binds = fields.join(", ");
                let inner = named_to_value(fields, "");
                arms.push_str(&format!(
                    "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                       (::serde::Value::Str(\"{vname}\".to_owned()), {inner})]),\n"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
         }}\n"
    )
}

// ---------------------------------------------------------- deserialization

fn named_from_value(path: &str, fields: &[String], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value({source}.get(\"{f}\")\
                   .ok_or_else(|| ::serde::DeError(\
                       ::std::format!(\"missing field {f} of {path}\")))?)?"
            )
        })
        .collect();
    format!(
        "::core::result::Result::Ok({path} {{ {} }})",
        inits.join(", ")
    )
}

fn seq_from_value(path: &str, n: usize, source: &str) -> String {
    let inits: Vec<String> = (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
        .collect();
    format!(
        "match {source} {{\n\
             ::serde::Value::Seq(items) if items.len() == {n} => \
                 ::core::result::Result::Ok({path}({inits})),\n\
             other => ::core::result::Result::Err(\
                 ::serde::DeError::expected(\"sequence of {n} for {path}\", other)),\n\
         }}",
        inits = inits.join(", "),
    )
}

fn de_struct(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => named_from_value(name, fields, "value"),
        Shape::Tuple(n) => seq_from_value(name, *n, "value"),
        Shape::Unit => format!("::core::result::Result::Ok({name})"),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::core::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}\n"
    )
}

fn de_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            Shape::Unit => unit_arms.push_str(&format!(
                "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
            )),
            Shape::Tuple(n) => {
                let body = seq_from_value(&format!("{name}::{vname}"), *n, "inner");
                data_arms.push_str(&format!("\"{vname}\" => {body},\n"));
            }
            Shape::Named(fields) => {
                let body = named_from_value(&format!("{name}::{vname}"), fields, "inner");
                data_arms.push_str(&format!("\"{vname}\" => {body},\n"));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                 match value {{\n\
                     ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::core::result::Result::Err(::serde::DeError(\
                             ::std::format!(\"unknown unit variant {{other}} of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                         let (key, inner) = &entries[0];\n\
                         let ::serde::Value::Str(tag) = key else {{\n\
                             return ::core::result::Result::Err(\
                                 ::serde::DeError::expected(\"variant tag\", key));\n\
                         }};\n\
                         match tag.as_str() {{\n\
                             {data_arms}\n\
                             other => ::core::result::Result::Err(::serde::DeError(\
                                 ::std::format!(\"unknown variant {{other}} of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::core::result::Result::Err(\
                         ::serde::DeError::expected(\"{name} enum value\", other)),\n\
                 }}\n\
             }}\n\
         }}\n"
    )
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse(input) {
        Parsed::Struct { name, shape } => ser_struct(&name, &shape),
        Parsed::Enum { name, variants } => ser_enum(&name, &variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse(input) {
        Parsed::Struct { name, shape } => de_struct(&name, &shape),
        Parsed::Enum { name, variants } => de_enum(&name, &variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Deserialize impl")
}
