//! Offline, API-compatible subset of `serde_json` over the vendored serde
//! [`Value`] model: `to_string`, `to_string_pretty`, `from_str`.
//!
//! Maps whose keys are strings print as JSON objects; maps with structured
//! keys print as arrays of `[key, value]` pairs (the vendored serde
//! deserializers accept both shapes). Floats print via Rust's shortest
//! round-trip formatting, so `parse(print(x)) == x` exactly.

use serde::{Deserialize, Serialize, Value};

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Infallible for the value model, but kept fallible for API parity.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to human-readable, indented JSON.
///
/// # Errors
///
/// Infallible for the value model, but kept fallible for API parity.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or on a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------- printing

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip float formatting.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_items(
                out,
                items.iter(),
                indent,
                depth,
                |out, item, indent, depth| {
                    write_value(out, item, indent, depth);
                },
            );
        }
        Value::Map(entries) => {
            let object = entries.iter().all(|(k, _)| matches!(k, Value::Str(_)));
            if object {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_value(out, k, indent, depth + 1);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, v, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push('}');
            } else {
                // Structured keys: encode as [[key, value], ...].
                write_items(
                    out,
                    entries.iter(),
                    indent,
                    depth,
                    |out, (k, v), indent, depth| {
                        out.push('[');
                        write_value(out, k, indent, depth);
                        out.push(',');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        write_value(out, v, indent, depth);
                        out.push(']');
                    },
                );
            }
        }
    }
}

fn write_items<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    depth: usize,
    mut write_one: impl FnMut(&mut String, T, Option<usize>, usize),
) {
    if items.len() == 0 {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline(out, indent, depth + 1);
        write_one(out, item, indent, depth + 1);
    }
    newline(out, indent, depth);
    out.push(']');
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at offset {}",
                char::from(b),
                self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((Value::Str(key), value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("bad escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("unknown escape \\{}", char::from(other))))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte position.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad float {text:?}: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error(format!("bad integer {text:?}: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error(format!("bad integer {text:?}: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), v);

        let f = 0.1f64 + 0.2;
        let back: f64 = from_str(&to_string(&f).unwrap()).unwrap();
        assert_eq!(back, f, "floats round-trip bit-exactly");

        let text = "hello \"world\"\nline".to_owned();
        let back: String = from_str(&to_string(&text).unwrap()).unwrap();
        assert_eq!(back, text);
    }

    #[test]
    fn structured_map_keys_round_trip_as_pair_arrays() {
        let mut m: BTreeMap<(u32, u32), String> = BTreeMap::new();
        m.insert((1, 2), "a".into());
        m.insert((3, 4), "b".into());
        let s = to_string(&m).unwrap();
        let back: BTreeMap<(u32, u32), String> = from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![Some(1u8), None, Some(3)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Option<u8>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("[1,").is_err());
        assert!(from_str::<u64>("nope").is_err());
        assert!(from_str::<u64>("1 2").is_err());
    }
}
