//! Choosing the pinging-set size `K`, and collusion resilience (§4.3).

/// Probability that at least one of `k` monitors is up when system-wide
/// average availability is `a`: `1 − (1−a)^K`.
///
/// # Panics
///
/// Panics if `a` is outside `[0, 1]`.
#[must_use]
pub fn prob_some_monitor_up(a: f64, k: u32) -> f64 {
    assert!(
        (0.0..=1.0).contains(&a),
        "availability must be in [0,1], got {a}"
    );
    1.0 - (1.0 - a).powi(k as i32)
}

/// Smallest `K = c·ln N` guaranteeing continuous monitoring w.h.p.:
/// `c / ln(1/(1−a)) ≥ 2`, i.e. `K = ⌈2·ln N / ln(1/(1−a))⌉` (§4.3).
///
/// # Panics
///
/// Panics if `a` is not strictly between 0 and 1 (a system of permanently
/// absent — or permanently present — nodes needs no analysis).
#[must_use]
pub fn k_for_continuous_monitoring(n: usize, a: f64) -> u32 {
    assert!(a > 0.0 && a < 1.0, "availability must be in (0,1), got {a}");
    let c_over = 2.0 / (1.0 / (1.0 - a)).ln();
    (c_over * (n as f64).ln()).ceil() as u32
}

/// `K` needed so every node has at least `l` monitors w.h.p.:
/// `K = (l+1)·ln N` (§4.3, supporting "l out of K" policies).
#[must_use]
pub fn k_for_l_out_of_k(l: u32, n: usize) -> u32 {
    ((f64::from(l) + 1.0) * (n as f64).ln()).ceil() as u32
}

/// Upper bound on the probability that a node has fewer than `l` monitors
/// when `K = (l+1)·ln N`: `O(1/N²)` — the §4.3 derivation evaluates to
/// `e^{−K}·N^{l−1}`.
#[must_use]
pub fn prob_fewer_than_l(l: u32, k: u32, n: usize) -> f64 {
    let nf = n as f64;
    ((-f64::from(k)).exp() * nf.powi(l as i32 - 1)).min(1.0)
}

/// Probability that *none* of `c` colluders of a node appear in its
/// pinging set: `(1 − K/N)^C ≈ 1 − CK/N` (§4.3).
#[must_use]
pub fn prob_collusion_free(c: u32, k: u32, n: usize) -> f64 {
    (1.0 - f64::from(k) / n as f64).powi(c as i32)
}

/// Probability that none of `d` system-wide colluding relationships shows
/// up in any pinging set: `(1 − K/N)^D` (§4.3).
#[must_use]
pub fn prob_system_collusion_free(d: u64, k: u32, n: usize) -> f64 {
    let per = 1.0 - f64::from(k) / n as f64;
    per.powf(d as f64)
}

/// Balls-and-bins bound on the maximum pinging/target set size: with
/// `N·K` relationship "balls" into `N` node "bins", the maximum load is
/// `K + O(√(K·ln N))` w.h.p. (Raab & Steger, cited by §4.3).
#[must_use]
pub fn max_set_size_bound(k: u32, n: usize) -> f64 {
    let kf = f64::from(k);
    kf + (2.0 * kf * (n as f64).ln()).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_up_probability() {
        assert!((prob_some_monitor_up(0.5, 1) - 0.5).abs() < 1e-12);
        assert!(prob_some_monitor_up(0.5, 20) > 0.999_999);
        assert_eq!(prob_some_monitor_up(0.0, 5), 0.0);
        assert_eq!(prob_some_monitor_up(1.0, 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "availability must be in [0,1]")]
    fn monitor_up_rejects_bad_availability() {
        let _ = prob_some_monitor_up(1.5, 2);
    }

    #[test]
    fn continuous_monitoring_k_grows_with_size_and_shrinks_with_availability() {
        let k1 = k_for_continuous_monitoring(1_000, 0.5);
        let k2 = k_for_continuous_monitoring(1_000_000, 0.5);
        assert!(k2 > k1);
        let k3 = k_for_continuous_monitoring(1_000_000, 0.9);
        assert!(k3 < k2);
        // N=1e6, a=0.5: 2·ln(1e6)/ln(2) ≈ 39.9 → 40.
        assert_eq!(k2, 40);
    }

    #[test]
    fn l_out_of_k_sizes() {
        // l=1, N=2000: 2·ln(2000) ≈ 15.2 → 16.
        assert_eq!(k_for_l_out_of_k(1, 2000), 16);
        assert!(k_for_l_out_of_k(3, 2000) > k_for_l_out_of_k(1, 2000));
    }

    #[test]
    fn fewer_than_l_probability_is_tiny_at_recommended_k() {
        let n = 10_000;
        let l = 2;
        let k = k_for_l_out_of_k(l, n);
        let p = prob_fewer_than_l(l, k, n);
        assert!(p < 1.0 / (n as f64), "p = {p}");
    }

    #[test]
    fn collusion_free_probability_matches_approximation() {
        // §4.3: (1 − K/N)^C ≈ 1 − CK/N for C = o(N/log N).
        let (c, k, n) = (10u32, 20u32, 1_000_000usize);
        let exact = prob_collusion_free(c, k, n);
        let approx = 1.0 - f64::from(c) * f64::from(k) / n as f64;
        assert!((exact - approx).abs() < 1e-4);
        assert!(exact > 0.999, "collusion pollution is improbable");
    }

    #[test]
    fn system_collusion_free_tends_to_one() {
        // D = o(N/log N) total colluding relationships.
        let p = prob_system_collusion_free(1_000, 20, 1_000_000);
        assert!(p > 0.97, "p = {p}");
    }

    #[test]
    fn max_set_size_is_k_plus_sublinear() {
        let bound = max_set_size_bound(11, 2000);
        assert!(bound > 11.0);
        assert!(bound < 33.0, "bound {bound} should be K + O(√(K ln N))");
    }
}
