//! # avmon-analysis — the closed-form performance analysis of AVMON (§4)
//!
//! Pure-math companion to the protocol: the discovery-time bound, the
//! JOIN-spread and dead-node garbage-collection times, the optimal
//! coarse-view sizes (Optimal-MD / -MDC / -DC), pinging-set sizing
//! (`K = O(log N)` for continuous monitoring, l-out-of-K policies), the
//! collusion-resilience probabilities, and the Table 1 variant comparison.
//!
//! The experiment harness uses these expressions as the "paper-predicted"
//! series to compare simulations against; property tests cross-validate
//! the asymptotic optima against exact integer minimization.
//!
//! ```
//! use avmon_analysis as analysis;
//!
//! // Expected discovery time at the paper's running example
//! // (N = 1 million, Optimal-MDC cvs = 32): about 1000 protocol periods.
//! let d = analysis::expected_discovery_periods(32, 1e6);
//! assert!((d - 1000.0).abs() < 50.0);
//! ```

pub mod formulas;
pub mod k_selection;
pub mod optimal;
pub mod table1;

pub use formulas::{
    computations_per_period, dead_node_gc_periods, expected_discovery_periods,
    expected_discovery_periods_approx, expected_duplicate_joins, expected_memory_entries,
    expected_ts_size, join_spread_periods, pair_check_probability_per_period,
    view_bandwidth_per_period,
};
pub use k_selection::{
    k_for_continuous_monitoring, k_for_l_out_of_k, max_set_size_bound, prob_collusion_free,
    prob_fewer_than_l, prob_some_monitor_up, prob_system_collusion_free,
};
pub use optimal::{
    cvs_optimal_dc, cvs_optimal_md, cvs_optimal_mdc, integer_argmin, objective_dc, objective_md,
    objective_mdc,
};
pub use table1::{render_table1, table1, Table1Row};
