//! Optimal coarse-view sizes (§4.2): the MD, MDC and DC variants.
//!
//! The coarse-view size `cvs` trades memory/bandwidth (`M ∝ cvs`) and
//! computation (`C ∝ cvs²`) against discovery time
//! (`D = 1/(1−e^{−cvs²/N})`). Each variant minimizes a different sum; the
//! paper derives the asymptotic optima by differentiation, and this module
//! provides both those closed forms and exact integer minimizers (which
//! property tests verify against each other).

use crate::formulas::expected_discovery_periods;

/// Asymptotic Optimal-MD size: `cvs = (2N)^{1/3}`, minimizing
/// `f(cvs) = cvs + N/cvs²`.
#[must_use]
pub fn cvs_optimal_md(n: f64) -> f64 {
    (2.0 * n).cbrt()
}

/// Asymptotic Optimal-MDC size: `cvs ≈ N^{1/4}`, minimizing
/// `g(cvs) = cvs + cvs² + N/cvs²`.
#[must_use]
pub fn cvs_optimal_mdc(n: f64) -> f64 {
    n.powf(0.25)
}

/// Asymptotic Optimal-DC size: also `N^{1/4}` (minimizing
/// `cvs² + N/cvs²` gives exactly `cvs⁴ = N`).
#[must_use]
pub fn cvs_optimal_dc(n: f64) -> f64 {
    n.powf(0.25)
}

/// The MD objective: memory/bandwidth plus discovery time.
#[must_use]
pub fn objective_md(cvs: usize, n: f64) -> f64 {
    cvs as f64 + expected_discovery_periods(cvs, n)
}

/// The MDC objective: memory/bandwidth, computation, and discovery time.
#[must_use]
pub fn objective_mdc(cvs: usize, n: f64) -> f64 {
    cvs as f64 + (cvs * cvs) as f64 + expected_discovery_periods(cvs, n)
}

/// The DC objective: computation and discovery time.
#[must_use]
pub fn objective_dc(cvs: usize, n: f64) -> f64 {
    (cvs * cvs) as f64 + expected_discovery_periods(cvs, n)
}

/// Exact integer minimizer of `objective` over `cvs ∈ [2, ⌈√N⌉·4]`.
///
/// # Example
///
/// ```
/// use avmon_analysis::{integer_argmin, objective_mdc};
///
/// let best = integer_argmin(1_000_000.0, objective_mdc);
/// // The asymptotic optimum is N^{1/4} ≈ 31.6; the exact integer optimum
/// // lands within a couple of units.
/// assert!((29..=35).contains(&best));
/// ```
#[must_use]
pub fn integer_argmin(n: f64, objective: impl Fn(usize, f64) -> f64) -> usize {
    let hi = ((n.sqrt().ceil() as usize) * 4).max(8);
    let mut best = 2;
    let mut best_val = objective(2, n);
    for cvs in 3..=hi {
        let val = objective(cvs, n);
        if val < best_val {
            best_val = val;
            best = cvs;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asymptotic_optima_match_table1() {
        // Table 1 at N = 1 million.
        assert!((cvs_optimal_md(1e6) - 126.0).abs() < 1.0);
        assert!((cvs_optimal_mdc(1e6) - 31.6).abs() < 0.1);
        assert_eq!(cvs_optimal_dc(1e6), cvs_optimal_mdc(1e6));
    }

    #[test]
    fn integer_minimizers_track_asymptotics() {
        for n in [1e4, 1e5, 1e6, 1e7] {
            let md = integer_argmin(n, objective_md);
            let mdc = integer_argmin(n, objective_mdc);
            let dc = integer_argmin(n, objective_dc);
            let md_asym = cvs_optimal_md(n);
            let mdc_asym = cvs_optimal_mdc(n);
            assert!(
                (md as f64 - md_asym).abs() / md_asym < 0.15,
                "N={n}: integer MD {md} vs asymptotic {md_asym}"
            );
            assert!(
                (mdc as f64 - mdc_asym).abs() / mdc_asym < 0.25,
                "N={n}: integer MDC {mdc} vs asymptotic {mdc_asym}"
            );
            assert!(
                (dc as f64 - mdc_asym).abs() / mdc_asym < 0.25,
                "N={n}: integer DC {dc} vs asymptotic {mdc_asym}"
            );
        }
    }

    #[test]
    fn integer_argmin_is_local_minimum() {
        let n = 250_000.0;
        for objective in [
            objective_md as fn(usize, f64) -> f64,
            objective_mdc,
            objective_dc,
        ] {
            let best = integer_argmin(n, objective);
            let v = objective(best, n);
            assert!(v <= objective(best - 1, n));
            assert!(v <= objective(best + 1, n));
        }
    }

    #[test]
    fn md_prefers_larger_views_than_mdc() {
        // Computation pressure pushes MDC to smaller views.
        for n in [1e4, 1e6] {
            assert!(integer_argmin(n, objective_md) > integer_argmin(n, objective_mdc));
        }
    }
}
