//! Closed-form performance expressions from §4.1 of the paper.
//!
//! All times are in *protocol periods* unless noted; converting to wall
//! clock means multiplying by the period length (1 minute by default).

/// Expected discovery time (periods) of a monitoring pair:
/// `E[D] ≤ 1 / (1 − e^{−cvs²/N})`.
///
/// # Example
///
/// ```
/// // N = 1e6, cvs = 32 (Optimal-MDC): ≈ 977 periods ≈ the paper's "1000
/// // time units".
/// let d = avmon_analysis::expected_discovery_periods(32, 1_000_000.0);
/// assert!((d - 977.0).abs() < 2.0);
/// ```
#[must_use]
pub fn expected_discovery_periods(cvs: usize, n: f64) -> f64 {
    let x = (cvs * cvs) as f64 / n;
    1.0 / (1.0 - (-x).exp())
}

/// The asymptotic simplification `E[D] ≈ N / cvs²` (valid for
/// `cvs = o(√N)`).
#[must_use]
pub fn expected_discovery_periods_approx(cvs: usize, n: f64) -> f64 {
    n / (cvs * cvs) as f64
}

/// Probability that a given node pair is checked by at least one coarse
/// view fetch in one protocol period: `≥ 1 − e^{−cvs²/N}`.
#[must_use]
pub fn pair_check_probability_per_period(cvs: usize, n: f64) -> f64 {
    let x = (cvs * cvs) as f64 / n;
    1.0 - (-x).exp()
}

/// Expected JOIN spread time in periods: `O(log cvs)` w.h.p. — the
/// spanning tree of `cvs` recipients has depth `⌈log2 cvs⌉`.
#[must_use]
pub fn join_spread_periods(cvs: usize) -> f64 {
    (cvs.max(2) as f64).log2().ceil()
}

/// Expected number of duplicate JOIN receipts for one join:
/// upper-bounded by `2·cvs²/N`, which is `o(1)` for `cvs = o(√N)` (§4.1).
#[must_use]
pub fn expected_duplicate_joins(cvs: usize, n: f64) -> f64 {
    2.0 * (cvs * cvs) as f64 / n
}

/// Periods until a dead node is removed from one coarse view w.h.p.
/// `1 − 1/N`: `T* = cvs · ln N` (§4.1, "Effect of Dead Nodes").
#[must_use]
pub fn dead_node_gc_periods(cvs: usize, n: f64) -> f64 {
    cvs as f64 * n.ln()
}

/// Expected per-node memory entries: `|CV| + |PS| + |TS| ≈ cvs + 2K`.
#[must_use]
pub fn expected_memory_entries(cvs: usize, k: u32) -> f64 {
    cvs as f64 + 2.0 * f64::from(k)
}

/// Consistency-condition evaluations per protocol period per node:
/// the Fig. 2 cross-check scans `2·(cvs+2)²` ordered pairs.
#[must_use]
pub fn computations_per_period(cvs: usize) -> f64 {
    2.0 * ((cvs + 2) * (cvs + 2)) as f64
}

/// Coarse-membership bandwidth per period in bytes: one view fetch of
/// `cvs` entries at `entry_bytes` each (§4.1 uses 6-8 B per entry).
#[must_use]
pub fn view_bandwidth_per_period(cvs: usize, entry_bytes: usize) -> f64 {
    (cvs * entry_bytes) as f64
}

/// Expected size of the target set when `N_longterm` identities have ever
/// existed: `E[|TS|] = K · N_longterm / N` (§4.2 "In practice").
#[must_use]
pub fn expected_ts_size(k: u32, n_longterm: usize, n: usize) -> f64 {
    f64::from(k) * n_longterm as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_matches_paper_example() {
        // §4.2: N = 1 million, cvs = 32 → expected discovery ≈ 1000 periods.
        let d = expected_discovery_periods(32, 1e6);
        assert!((900.0..1100.0).contains(&d), "E[D] = {d}");
        // The approximation converges to the exact bound for small cvs²/N.
        let approx = expected_discovery_periods_approx(32, 1e6);
        assert!((d - approx).abs() / d < 0.01);
    }

    #[test]
    fn discovery_decreases_with_cvs() {
        let mut last = f64::INFINITY;
        for cvs in [8, 16, 32, 64, 128] {
            let d = expected_discovery_periods(cvs, 1e6);
            assert!(d < last);
            last = d;
        }
    }

    #[test]
    fn pair_check_probability_bounds() {
        let p = pair_check_probability_per_period(32, 1e6);
        assert!(p > 0.0 && p < 1.0);
        assert!((1.0 / p - expected_discovery_periods(32, 1e6)).abs() < 1e-9);
    }

    #[test]
    fn join_spread_is_logarithmic() {
        assert_eq!(join_spread_periods(32), 5.0);
        assert_eq!(join_spread_periods(27), 5.0);
        assert_eq!(join_spread_periods(2), 1.0);
    }

    #[test]
    fn duplicates_vanish_for_small_cvs() {
        assert!(expected_duplicate_joins(32, 1e6) < 0.01);
        assert!(expected_duplicate_joins(1000, 1e6) > 1.0);
    }

    #[test]
    fn gc_time_matches_cvs_log_n() {
        let t = dead_node_gc_periods(27, 2000.0);
        assert!((t - 27.0 * 2000.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn memory_matches_section5() {
        // §5.1: N=2000, K=11, cvs=27 → expected 49 entries.
        assert_eq!(expected_memory_entries(27, 11), 49.0);
    }

    #[test]
    fn computations_match_fig7_scale() {
        // Fig. 7 reports "close to 2·cvs²" per minute; with the {x,w}
        // inflation, cvs=27 gives 1682.
        assert_eq!(computations_per_period(27), 1682.0);
    }

    #[test]
    fn bandwidth_matches_paper_example() {
        // §4.1: N = 1e6, cvs = 32, 6 B/entry → 192 B per period.
        assert_eq!(view_bandwidth_per_period(32, 6), 192.0);
    }

    #[test]
    fn ts_size_scales_with_longterm_population() {
        // §4.2: minimal-death systems have E[|TS|] ≤ K.
        assert!(expected_ts_size(11, 2000, 2000) <= 11.0);
        // OV: N_longterm = 1319, N = 550, K = 9 → ≈ 21.6.
        let ts = expected_ts_size(9, 1319, 550);
        assert!((21.0..22.0).contains(&ts));
    }
}
