//! Table 1 of the paper: asymptotic comparison of the discovery variants.
//!
//! | Approach | M (memory/bw per round) | D (expected discovery) | C (comps per round) |
//! |---|---|---|---|
//! | Broadcast [11]     | O(N)      | O(log N)      | one-time only |
//! | AVMON generic      | O(cvs)    | 1/(1−e^{−cvs²/N}) | O(cvs²) |
//! | AVMON cvs=log N    | O(log N)  | N/(log N)²    | O((log N)²) |
//! | Optimal-MD         | O((2N)^⅓) | (2N)^⅓        | O((2N)^⅔) |
//! | Optimal-MDC / -DC  | O(N^¼)    | √N            | O(√N) |

use crate::formulas::expected_discovery_periods;
use crate::optimal::{cvs_optimal_md, cvs_optimal_mdc};

/// One row of Table 1, instantiated at a concrete `N`.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Variant name as in the paper.
    pub approach: &'static str,
    /// Coarse-view size used (`None` for Broadcast).
    pub cvs: Option<usize>,
    /// Memory / per-round bandwidth, in view entries (N for Broadcast).
    pub memory_bandwidth: f64,
    /// Expected discovery time in protocol periods.
    pub discovery_periods: f64,
    /// Consistency-condition computations per round (0 = one-time only).
    pub computations_per_round: f64,
}

/// Instantiates Table 1 at system size `n`.
///
/// # Example
///
/// ```
/// let rows = avmon_analysis::table1(1_000_000);
/// assert_eq!(rows.len(), 5);
/// // Broadcast pays N in bandwidth; Optimal-MDC pays N^{1/4}.
/// assert!(rows[0].memory_bandwidth > rows[4].memory_bandwidth * 1000.0);
/// ```
#[must_use]
pub fn table1(n: usize) -> Vec<Table1Row> {
    let nf = n as f64;
    let log_n = nf.log2().ceil().max(2.0) as usize;
    let md = cvs_optimal_md(nf).round().max(2.0) as usize;
    let mdc = cvs_optimal_mdc(nf).round().max(2.0) as usize;
    let generic = 4 * mdc; // the paper's experimental default for context

    let row = |approach, cvs: usize| Table1Row {
        approach,
        cvs: Some(cvs),
        memory_bandwidth: cvs as f64,
        discovery_periods: expected_discovery_periods(cvs, nf),
        computations_per_round: 2.0 * ((cvs + 2) * (cvs + 2)) as f64,
    };

    vec![
        Table1Row {
            approach: "Broadcast (from [11])",
            cvs: None,
            memory_bandwidth: nf,
            discovery_periods: nf.log2(), // O(log N) flood depth
            computations_per_round: 0.0,  // one-time only
        },
        row("AVMON, generic cvs (4·N^1/4)", generic),
        row("AVMON, cvs = log N", log_n),
        row("AVMON, Optimal-MD (cvs = (2N)^1/3)", md),
        row("AVMON, Optimal-MDC/-DC (cvs = N^1/4)", mdc),
    ]
}

/// Renders Table 1 as an aligned text table (the harness prints this).
#[must_use]
pub fn render_table1(n: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Table 1 @ N = {n}");
    let _ = writeln!(
        out,
        "{:<38} {:>6} {:>14} {:>16} {:>14}",
        "Approach", "cvs", "M (entries)", "D (periods)", "C (per round)"
    );
    for r in table1(n) {
        let cvs = r.cvs.map_or("-".to_string(), |v| v.to_string());
        let comp = if r.computations_per_round == 0.0 {
            "one-time".to_string()
        } else {
            format!("{:.0}", r.computations_per_round)
        };
        let _ = writeln!(
            out,
            "{:<38} {:>6} {:>14.0} {:>16.1} {:>14}",
            r.approach, cvs, r.memory_bandwidth, r.discovery_periods, comp
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orderings_match_the_paper() {
        let rows = table1(1_000_000);
        let by_name = |name: &str| {
            rows.iter()
                .find(|r| r.approach.contains(name))
                .expect("row exists")
                .clone()
        };
        let broadcast = by_name("Broadcast");
        let log_n = by_name("log N");
        let md = by_name("Optimal-MD ");
        let mdc = by_name("MDC");

        // Memory: Broadcast ≫ MD > MDC ≥ logN.
        assert!(broadcast.memory_bandwidth > md.memory_bandwidth);
        assert!(md.memory_bandwidth > mdc.memory_bandwidth);
        assert!(mdc.memory_bandwidth >= log_n.memory_bandwidth);

        // Discovery: Broadcast fastest, then MD, then MDC, then logN.
        assert!(broadcast.discovery_periods < md.discovery_periods);
        assert!(md.discovery_periods < mdc.discovery_periods);
        assert!(mdc.discovery_periods < log_n.discovery_periods);

        // Computation: logN cheapest per round among AVMON variants; MD
        // most expensive.
        assert!(log_n.computations_per_round < mdc.computations_per_round);
        assert!(mdc.computations_per_round < md.computations_per_round);
    }

    #[test]
    fn table_values_at_one_million() {
        let rows = table1(1_000_000);
        let mdc = rows.iter().find(|r| r.approach.contains("MDC")).unwrap();
        assert_eq!(mdc.cvs, Some(32));
        // D ≈ √N = 1000 periods.
        assert!((900.0..1100.0).contains(&mdc.discovery_periods));
        let md = rows
            .iter()
            .find(|r| r.approach.contains("Optimal-MD "))
            .unwrap();
        assert_eq!(md.cvs, Some(126));
        // D ≈ (2N)^{1/3} = 126 periods.
        assert!((55.0..130.0).contains(&md.discovery_periods));
    }

    #[test]
    fn render_contains_all_rows() {
        let text = render_table1(2000);
        assert!(text.contains("Broadcast"));
        assert!(text.contains("Optimal-MDC"));
        assert!(text.contains("one-time"));
        assert_eq!(text.lines().count(), 7);
    }
}
