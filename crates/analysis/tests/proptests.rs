//! Property-based validation of the §4 analysis.

use avmon_analysis as analysis;
use proptest::prelude::*;

proptest! {
    /// The exact discovery bound is always at least 1 period and is
    /// monotonically decreasing in cvs (more view = faster discovery).
    #[test]
    fn discovery_bound_behaves(n in 100.0f64..1e8, cvs in 2usize..512) {
        let d = analysis::expected_discovery_periods(cvs, n);
        prop_assert!(d >= 1.0);
        let d_bigger = analysis::expected_discovery_periods(cvs + 1, n);
        prop_assert!(d_bigger <= d);
    }

    /// The asymptotic form N/cvs² upper-bounds within 10% whenever
    /// cvs² ≪ N (the paper's regime cvs = o(√N)).
    #[test]
    fn approximation_tracks_exact(n in 1e4f64..1e8, cvs in 2usize..64) {
        prop_assume!(((cvs * cvs) as f64) < n / 100.0);
        let exact = analysis::expected_discovery_periods(cvs, n);
        let approx = analysis::expected_discovery_periods_approx(cvs, n);
        prop_assert!((exact - approx).abs() / exact < 0.1,
            "exact {} vs approx {}", exact, approx);
    }

    /// Integer minimizers are true local minima of their objectives.
    #[test]
    fn integer_optima_are_minima(n in 1e3f64..1e7) {
        for obj in [analysis::objective_md as fn(usize, f64) -> f64,
                    analysis::objective_mdc,
                    analysis::objective_dc] {
            let best = analysis::integer_argmin(n, obj);
            prop_assert!(obj(best, n) <= obj(best + 1, n));
            if best > 2 {
                prop_assert!(obj(best, n) <= obj(best - 1, n));
            }
        }
    }

    /// K chosen for continuous monitoring actually achieves w.h.p.
    /// coverage: P(some monitor up) ≥ 1 − 1/N².
    #[test]
    fn continuous_monitoring_k_suffices(n in 100usize..1_000_000, a in 0.05f64..0.95) {
        let k = analysis::k_for_continuous_monitoring(n, a);
        let p = analysis::prob_some_monitor_up(a, k);
        let target = 1.0 - 1.0 / (n as f64).powi(2);
        prop_assert!(p >= target - 1e-9, "p {} below {}", p, target);
    }

    /// Collusion-free probability decreases in C and K, increases in N.
    #[test]
    fn collusion_monotonicity(c in 1u32..100, k in 1u32..64, n in 10_000usize..1_000_000) {
        let base = analysis::prob_collusion_free(c, k, n);
        prop_assert!(analysis::prob_collusion_free(c + 1, k, n) <= base);
        prop_assert!(analysis::prob_collusion_free(c, k + 1, n) <= base);
        prop_assert!(analysis::prob_collusion_free(c, k, n * 2) >= base);
        prop_assert!((0.0..=1.0).contains(&base));
    }

    /// Table 1 invariants hold at any system size: Broadcast always pays
    /// the most bandwidth, Optimal-MD always discovers fastest among
    /// AVMON variants.
    #[test]
    fn table1_invariants(n in 1_000usize..10_000_000) {
        let rows = analysis::table1(n);
        let broadcast = &rows[0];
        for row in &rows[1..] {
            prop_assert!(broadcast.memory_bandwidth > row.memory_bandwidth);
        }
        // Among the *optimal* variants (logN / MD / MDC), MD discovers
        // fastest: it spends the most memory on its view. (The paper's
        // experimental default 4·N^{1/4} may beat it at small N.)
        let md = rows.iter().find(|r| r.approach.contains("Optimal-MD ")).unwrap();
        for name in ["log N", "MDC"] {
            let row = rows.iter().find(|r| r.approach.contains(name)).unwrap();
            prop_assert!(md.discovery_periods <= row.discovery_periods + 1e-9,
                "MD must beat {} on discovery at N={}", name, n);
        }
    }
}
